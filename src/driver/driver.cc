#include "driver/driver.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

core::SimConfig
paperConfig()
{
    // Section 4.2: 8-way issue, 256-entry RUU, LSQ = RUU/2, 16 KB
    // direct-mapped single-cycle split L1s (write-back,
    // write-noallocate data cache), 8 ns on-chip banks behind a
    // 256-bit bus at core clock, an 8-byte global bus at 1/10 core
    // clock, 2-cycle interface penalties, 128-entry 1 ns BSHRs.
    core::SimConfig cfg;
    cfg.core = ooo::CoreParams{};
    cfg.mem = mem::MainMemoryParams{};
    cfg.bus = interconnect::BusParams{};
    cfg.numNodes = 2;
    cfg.bshrLatency = 1;
    cfg.bshrCapacity = 128;
    return cfg;
}

core::PageHeat
profilePages(const prog::Program &program, InstSeq max_insts)
{
    func::FuncSim sim(program);
    core::PageHeat heat;
    sim.setMemHook([&heat](Addr addr, unsigned, bool) {
        ++heat[prog::pageBase(addr)];
    });
    sim.setFetchHook(
        [&heat](Addr pc) { ++heat[prog::pageBase(pc)]; });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return heat;
}

// -------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------

double
TrafficResult::bytesEliminated() const
{
    if (totalBytes() == 0)
        return 0.0;
    return static_cast<double>(requestBytes + writeBackBytes) /
           static_cast<double>(totalBytes());
}

double
TrafficResult::transactionsEliminated() const
{
    if (totalTransactions() == 0)
        return 0.0;
    return static_cast<double>(requests + writeBacks) /
           static_cast<double>(totalTransactions());
}

TrafficResult
measureEspTraffic(const prog::Program &program, InstSeq max_insts,
                  const mem::CacheParams &dcache_params)
{
    func::FuncSim sim(program);
    mem::Cache dcache(dcache_params);
    TrafficResult result;

    constexpr std::uint64_t header = 8;
    const std::uint64_t line = dcache_params.lineSize;

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit && r.allocated) {
            // Miss fetch: one request out, one line response back.
            ++result.requests;
            result.requestBytes += header;
            ++result.responses;
            result.responseBytes += header + line;
        } else if (!r.hit && !r.allocated) {
            // Write-noallocate store miss: a word write crosses the
            // interconnect (counts as write traffic ESP removes).
            ++result.writeBacks;
            result.writeBackBytes += header + 8;
        }
        if (r.evicted && r.victimDirty) {
            ++result.writeBacks;
            result.writeBackBytes += header + line;
        }
    });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return result;
}

// -------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------

void
RunCounter::feed(NodeId node)
{
    ++refs_;
    if (!active_ || node != curNode_) {
        if (active_)
            ++completedRuns_;
        active_ = true;
        curNode_ = node;
    }
}

std::uint64_t
RunCounter::runs() const
{
    return completedRuns_ + (active_ ? 1 : 0);
}

double
RunCounter::mean() const
{
    std::uint64_t r = runs();
    return r ? static_cast<double>(refs_) / static_cast<double>(r) : 0.0;
}

DatathreadResult
measureDatathreads(const prog::Program &program,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep,
                   InstSeq max_insts)
{
    func::FuncSim sim(program);
    // Section 3's study cache: 64 KB two-way (shared approximation
    // for both reference kinds; the paper filtered through its L1).
    mem::Cache dcache({64 * 1024, 2, 32, true});
    mem::Cache icache({64 * 1024, 2, 32, true});

    DatathreadResult result;
    result.replicated = rep;

    RunCounter all;
    RunCounter text;
    RunCounter data;
    // Replicated-run counting: consecutive *replicated* misses.
    std::uint64_t repl_refs = 0;
    std::uint64_t repl_runs = 0;
    bool in_repl_run = false;

    auto classify = [&](Addr addr, bool is_text) {
        ++result.missRefs;
        mem::PageEntry entry = ptable.lookup(addr);
        if (entry.replicated) {
            ++repl_refs;
            if (!in_repl_run) {
                in_repl_run = true;
                ++repl_runs;
            }
            // Replicated references are local everywhere and do not
            // break a communicated run.
            return;
        }
        in_repl_run = false;
        all.feed(entry.owner);
        if (is_text)
            text.feed(entry.owner);
        else
            data.feed(entry.owner);
    };

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit)
            classify(addr, false);
    });
    Addr last_iline = invalidAddr;
    sim.setFetchHook([&](Addr pc) {
        Addr iline = icache.lineAlign(pc);
        if (iline == last_iline)
            return;
        last_iline = iline;
        mem::CacheAccessResult r = icache.access(pc, false);
        if (!r.hit)
            classify(pc, true);
    });

    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));

    result.meanAll = all.mean();
    result.meanText = text.mean();
    result.meanData = data.mean();
    result.meanRepl =
        repl_runs ? static_cast<double>(repl_refs) /
                        static_cast<double>(repl_runs)
                  : 0.0;
    return result;
}

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

mem::PageTable
figure7PageTable(const prog::Program &program, unsigned num_nodes,
                 unsigned block_pages)
{
    core::DistributionConfig dist;
    dist.numNodes = num_nodes;
    dist.replicateText = true;
    dist.replicatedDataPages = 0;
    dist.blockPages = block_pages;
    return core::buildPageTable(program, dist);
}

core::RunResult
runDataScalar(const prog::Program &program,
              const core::SimConfig &config)
{
    core::DataScalarSystem system(
        program, config, figure7PageTable(program, config.numNodes));
    return system.run();
}

core::RunResult
runTraditional(const prog::Program &program,
               const core::SimConfig &config)
{
    baseline::TraditionalSystem system(
        program, config, figure7PageTable(program, config.numNodes));
    return system.run();
}

core::RunResult
runPerfect(const prog::Program &program, const core::SimConfig &config)
{
    baseline::PerfectSystem system(program, config);
    return system.run();
}

// -------------------------------------------------------------------
// Parallel experiment sweeps
// -------------------------------------------------------------------

namespace {

core::RunResult
runSweepPoint(const SweepPoint &pt)
{
    prog::Program program =
        workloads::findWorkload(pt.workload).build(pt.scale);
    if (pt.system == "perfect")
        return runPerfect(program, pt.config);
    if (pt.system == "traditional") {
        baseline::TraditionalSystem system(
            program, pt.config,
            figure7PageTable(program, pt.config.numNodes,
                             pt.blockPages));
        return system.run();
    }
    if (pt.system == "datascalar") {
        core::DataScalarSystem system(
            program, pt.config,
            figure7PageTable(program, pt.config.numNodes,
                             pt.blockPages));
        return system.run();
    }
    fatal("unknown sweep system '%s'", pt.system.c_str());
}

} // namespace

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, unsigned jobs)
{
    // Every point builds its own program and simulator state; the
    // only shared write is each task's pre-assigned result slot.
    std::vector<core::RunResult> results(points.size());
    common::parallelFor(jobs, points.size(), [&](std::size_t i) {
        results[i] = runSweepPoint(points[i]);
    });
    return results;
}

stats::Table
fig7IpcTable(const std::vector<std::string> &workload_names,
             InstSeq budget, unsigned jobs, bool event_driven)
{
    std::vector<SweepPoint> points;
    for (const std::string &name : workload_names) {
        core::SimConfig cfg = paperConfig();
        cfg.maxInsts = budget;
        cfg.eventDriven = event_driven;
        auto add = [&](const char *system, unsigned nodes) {
            cfg.numNodes = nodes;
            points.push_back(SweepPoint{name, system, cfg, 1, 1});
        };
        add("perfect", 2);
        add("datascalar", 2);
        add("datascalar", 4);
        add("traditional", 2);
        add("traditional", 4);
    }

    std::vector<core::RunResult> results = runSweep(points, jobs);

    stats::Table table({"benchmark", "perfect", "DS-2", "DS-4",
                        "trad-1/2", "trad-1/4", "DS2/trad2",
                        "DS4/trad4"});
    for (std::size_t w = 0; w < workload_names.size(); ++w) {
        const core::RunResult &perfect = results[5 * w + 0];
        const core::RunResult &ds2 = results[5 * w + 1];
        const core::RunResult &ds4 = results[5 * w + 2];
        const core::RunResult &t2 = results[5 * w + 3];
        const core::RunResult &t4 = results[5 * w + 4];
        table.addRow({workload_names[w],
                      stats::Table::num(perfect.ipc, 3),
                      stats::Table::num(ds2.ipc, 3),
                      stats::Table::num(ds4.ipc, 3),
                      stats::Table::num(t2.ipc, 3),
                      stats::Table::num(t4.ipc, 3),
                      stats::Table::num(ds2.ipc / t2.ipc, 2),
                      stats::Table::num(ds4.ipc / t4.ipc, 2)});
    }
    return table;
}

} // namespace driver
} // namespace dscalar
