#include "driver/driver.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

core::SimConfig
paperConfig()
{
    // Section 4.2: 8-way issue, 256-entry RUU, LSQ = RUU/2, 16 KB
    // direct-mapped single-cycle split L1s (write-back,
    // write-noallocate data cache), 8 ns on-chip banks behind a
    // 256-bit bus at core clock, an 8-byte global bus at 1/10 core
    // clock, 2-cycle interface penalties, 128-entry 1 ns BSHRs.
    core::SimConfig cfg;
    cfg.core = ooo::CoreParams{};
    cfg.mem = mem::MainMemoryParams{};
    cfg.bus = interconnect::BusParams{};
    cfg.numNodes = 2;
    cfg.bshrLatency = 1;
    cfg.bshrCapacity = 128;
    return cfg;
}

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Perfect: return "perfect";
      case SystemKind::DataScalar: return "datascalar";
      case SystemKind::Traditional: return "traditional";
    }
    fatal("unknown SystemKind %d", static_cast<int>(kind));
}

bool
parseSystemKind(const std::string &name, SystemKind &out)
{
    if (name == "perfect")
        out = SystemKind::Perfect;
    else if (name == "datascalar")
        out = SystemKind::DataScalar;
    else if (name == "traditional")
        out = SystemKind::Traditional;
    else
        return false;
    return true;
}

const char *
interconnectKindName(core::InterconnectKind kind)
{
    switch (kind) {
      case core::InterconnectKind::Bus: return "bus";
      case core::InterconnectKind::Ring: return "ring";
    }
    fatal("unknown InterconnectKind %d", static_cast<int>(kind));
}

bool
parseInterconnectKind(const std::string &name,
                      core::InterconnectKind &out)
{
    if (name == "bus")
        out = core::InterconnectKind::Bus;
    else if (name == "ring")
        out = core::InterconnectKind::Ring;
    else
        return false;
    return true;
}

mem::CacheParams
table1CacheParams()
{
    return mem::CacheParams{64 * 1024, 2, 32, true};
}

core::PageHeat
profilePages(const prog::Program &program, InstSeq max_insts)
{
    func::FuncSim sim(program);
    core::PageHeat heat;
    sim.setMemHook([&heat](Addr addr, unsigned, bool) {
        ++heat[prog::pageBase(addr)];
    });
    sim.setFetchHook(
        [&heat](Addr pc) { ++heat[prog::pageBase(pc)]; });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return heat;
}

core::PageHeat
profilePages(const func::InstTrace &trace)
{
    core::PageHeat heat;
    trace.forEach([&heat](Addr pc, const isa::Instruction &,
                          Addr eff_addr, unsigned mem_size) {
        ++heat[prog::pageBase(pc)];
        if (mem_size)
            ++heat[prog::pageBase(eff_addr)];
    });
    return heat;
}

// -------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------

double
TrafficResult::bytesEliminated() const
{
    if (totalBytes() == 0)
        return 0.0;
    return static_cast<double>(requestBytes + writeBackBytes) /
           static_cast<double>(totalBytes());
}

double
TrafficResult::transactionsEliminated() const
{
    if (totalTransactions() == 0)
        return 0.0;
    return static_cast<double>(requests + writeBacks) /
           static_cast<double>(totalTransactions());
}

namespace {

/** The Table 1 memHook body, shared by the functional-run and
 *  trace-pass overloads so both decompose traffic identically. */
class TrafficAccumulator
{
  public:
    explicit TrafficAccumulator(const mem::CacheParams &dcache_params)
        : dcache_(dcache_params), line_(dcache_params.lineSize)
    {
    }

    void
    access(Addr addr, bool is_write)
    {
        constexpr std::uint64_t header = 8;
        mem::CacheAccessResult r = dcache_.access(addr, is_write);
        if (!r.hit && r.allocated) {
            // Miss fetch: one request out, one line response back.
            ++result.requests;
            result.requestBytes += header;
            ++result.responses;
            result.responseBytes += header + line_;
        } else if (!r.hit && !r.allocated) {
            // Write-noallocate store miss: a word write crosses the
            // interconnect (counts as write traffic ESP removes).
            ++result.writeBacks;
            result.writeBackBytes += header + 8;
        }
        if (r.evicted && r.victimDirty) {
            ++result.writeBacks;
            result.writeBackBytes += header + line_;
        }
    }

    TrafficResult result;

  private:
    mem::Cache dcache_;
    std::uint64_t line_;
};

} // namespace

TrafficResult
measureEspTraffic(const prog::Program &program, InstSeq max_insts,
                  const mem::CacheParams &dcache_params)
{
    func::FuncSim sim(program);
    TrafficAccumulator acc(dcache_params);
    sim.setMemHook([&acc](Addr addr, unsigned, bool is_write) {
        acc.access(addr, is_write);
    });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return acc.result;
}

TrafficResult
measureEspTraffic(const func::InstTrace &trace,
                  const mem::CacheParams &dcache_params)
{
    TrafficAccumulator acc(dcache_params);
    trace.forEach([&acc](Addr, const isa::Instruction &inst,
                         Addr eff_addr, unsigned mem_size) {
        if (mem_size)
            acc.access(eff_addr, inst.isStore());
    });
    return acc.result;
}

// -------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------

void
RunCounter::feed(NodeId node)
{
    ++refs_;
    if (!active_ || node != curNode_) {
        if (active_)
            ++completedRuns_;
        active_ = true;
        curNode_ = node;
    }
}

std::uint64_t
RunCounter::runs() const
{
    return completedRuns_ + (active_ ? 1 : 0);
}

double
RunCounter::mean() const
{
    std::uint64_t r = runs();
    return r ? static_cast<double>(refs_) / static_cast<double>(r) : 0.0;
}

namespace {

/**
 * The Table 2 hook bodies, shared by the functional-run and
 * trace-pass overloads. Order-sensitive: each instruction's fetch is
 * classified before its data access, exactly as FuncSim fires its
 * hooks, so both overloads walk the miss stream identically.
 */
class DatathreadAccumulator
{
  public:
    explicit DatathreadAccumulator(const mem::PageTable &ptable)
        // Section 3's study cache (shared approximation for both
        // reference kinds; the paper filtered through its L1).
        : ptable_(ptable), dcache_(table1CacheParams()),
          icache_(table1CacheParams())
    {
    }

    void
    fetch(Addr pc)
    {
        Addr iline = icache_.lineAlign(pc);
        if (iline == lastIline_)
            return;
        lastIline_ = iline;
        mem::CacheAccessResult r = icache_.access(pc, false);
        if (!r.hit)
            classify(pc, true);
    }

    void
    data(Addr addr, bool is_write)
    {
        mem::CacheAccessResult r = dcache_.access(addr, is_write);
        if (!r.hit)
            classify(addr, false);
    }

    DatathreadResult
    finish(const core::ReplicationReport &rep) const
    {
        DatathreadResult result;
        result.replicated = rep;
        result.missRefs = missRefs_;
        result.meanAll = all_.mean();
        result.meanText = text_.mean();
        result.meanData = data_.mean();
        result.meanRepl =
            replRuns_ ? static_cast<double>(replRefs_) /
                            static_cast<double>(replRuns_)
                      : 0.0;
        return result;
    }

  private:
    void
    classify(Addr addr, bool is_text)
    {
        ++missRefs_;
        mem::PageEntry entry = ptable_.lookup(addr);
        if (entry.replicated) {
            ++replRefs_;
            if (!inReplRun_) {
                inReplRun_ = true;
                ++replRuns_;
            }
            // Replicated references are local everywhere and do not
            // break a communicated run.
            return;
        }
        inReplRun_ = false;
        all_.feed(entry.owner);
        if (is_text)
            text_.feed(entry.owner);
        else
            data_.feed(entry.owner);
    }

    const mem::PageTable &ptable_;
    mem::Cache dcache_;
    mem::Cache icache_;
    Addr lastIline_ = invalidAddr;
    RunCounter all_;
    RunCounter text_;
    RunCounter data_;
    std::uint64_t missRefs_ = 0;
    // Replicated-run counting: consecutive *replicated* misses.
    std::uint64_t replRefs_ = 0;
    std::uint64_t replRuns_ = 0;
    bool inReplRun_ = false;
};

} // namespace

DatathreadResult
measureDatathreads(const prog::Program &program,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep,
                   InstSeq max_insts)
{
    func::FuncSim sim(program);
    DatathreadAccumulator acc(ptable);

    sim.setMemHook([&acc](Addr addr, unsigned, bool is_write) {
        acc.data(addr, is_write);
    });
    sim.setFetchHook([&acc](Addr pc) { acc.fetch(pc); });

    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return acc.finish(rep);
}

DatathreadResult
measureDatathreads(const func::InstTrace &trace,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep)
{
    DatathreadAccumulator acc(ptable);
    trace.forEach([&acc](Addr pc, const isa::Instruction &inst,
                         Addr eff_addr, unsigned mem_size) {
        acc.fetch(pc);
        if (mem_size)
            acc.data(eff_addr, inst.isStore());
    });
    return acc.finish(rep);
}

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

mem::PageTable
figure7PageTable(const prog::Program &program, unsigned num_nodes,
                 unsigned block_pages)
{
    core::DistributionConfig dist;
    dist.numNodes = num_nodes;
    dist.replicateText = true;
    dist.replicatedDataPages = 0;
    dist.blockPages = block_pages;
    return core::buildPageTable(program, dist);
}

core::RunResult
runSystem(SystemKind system, const prog::Program &program,
          const core::SimConfig &config, unsigned block_pages,
          std::shared_ptr<const func::InstTrace> trace,
          obs::Sampler *sampler)
{
    switch (system) {
      case SystemKind::Perfect: {
        baseline::PerfectSystem sys(program, config, std::move(trace));
        sys.setSampler(sampler);
        return sys.run();
      }
      case SystemKind::DataScalar: {
        core::DataScalarSystem sys(
            program, config,
            figure7PageTable(program, config.numNodes, block_pages),
            std::move(trace));
        sys.setSampler(sampler);
        return sys.run();
      }
      case SystemKind::Traditional: {
        baseline::TraditionalSystem sys(
            program, config,
            figure7PageTable(program, config.numNodes, block_pages),
            std::move(trace));
        sys.setSampler(sampler);
        return sys.run();
      }
    }
    fatal("unknown SystemKind %d", static_cast<int>(system));
}

core::RunResult
runDataScalar(const prog::Program &program,
              const core::SimConfig &config)
{
    return runSystem(SystemKind::DataScalar, program, config);
}

core::RunResult
runTraditional(const prog::Program &program,
               const core::SimConfig &config)
{
    return runSystem(SystemKind::Traditional, program, config);
}

core::RunResult
runPerfect(const prog::Program &program, const core::SimConfig &config)
{
    return runSystem(SystemKind::Perfect, program, config);
}

// -------------------------------------------------------------------
// Parallel experiment sweeps
// -------------------------------------------------------------------

namespace {

core::RunResult
runSweepPoint(const SweepPoint &pt, TraceCache *cache)
{
    if (!cache) {
        prog::Program program =
            workloads::findWorkload(pt.workload).build(pt.scale);
        return runSystem(pt.system, program, pt.config,
                         pt.blockPages);
    }
    // Build-once, capture-once: the cache assembles each
    // (workload, scale) a single time and functionally executes each
    // (workload, scale, maxInsts) a single time; this point replays
    // the shared stream.
    std::shared_ptr<const prog::Program> program =
        cache->program(pt.workload, pt.scale);
    std::shared_ptr<const func::InstTrace> trace =
        cache->acquire(pt.workload, pt.scale, pt.config.maxInsts);
    return runSystem(pt.system, *program, pt.config, pt.blockPages,
                     std::move(trace));
}

} // namespace

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, TraceCache &cache,
         unsigned jobs)
{
    // Every point gets its own simulator state; the shared writes
    // are each task's pre-assigned result slot and the (internally
    // synchronized) trace cache.
    std::vector<core::RunResult> results(points.size());
    common::parallelFor(jobs, points.size(), [&](std::size_t i) {
        results[i] = runSweepPoint(points[i], &cache);
    });
    return results;
}

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, unsigned jobs,
         bool reuse_traces)
{
    if (reuse_traces) {
        TraceCache cache;
        return runSweep(points, cache, jobs);
    }
    std::vector<core::RunResult> results(points.size());
    common::parallelFor(jobs, points.size(), [&](std::size_t i) {
        results[i] = runSweepPoint(points[i], nullptr);
    });
    return results;
}

stats::Table
fig7IpcTable(const std::vector<std::string> &workload_names,
             InstSeq budget, unsigned jobs, bool event_driven,
             bool trace_reuse)
{
    std::vector<SweepPoint> points;
    for (const std::string &name : workload_names) {
        core::SimConfig cfg = paperConfig();
        cfg.maxInsts = budget;
        cfg.eventDriven = event_driven;
        auto add = [&](SystemKind system, unsigned nodes) {
            cfg.numNodes = nodes;
            points.push_back(SweepPoint{name, system, cfg, 1, 1});
        };
        add(SystemKind::Perfect, 2);
        add(SystemKind::DataScalar, 2);
        add(SystemKind::DataScalar, 4);
        add(SystemKind::Traditional, 2);
        add(SystemKind::Traditional, 4);
    }

    std::vector<core::RunResult> results =
        runSweep(points, jobs, trace_reuse);

    stats::Table table({"benchmark", "perfect", "DS-2", "DS-4",
                        "trad-1/2", "trad-1/4", "DS2/trad2",
                        "DS4/trad4"});
    for (std::size_t w = 0; w < workload_names.size(); ++w) {
        const core::RunResult &perfect = results[5 * w + 0];
        const core::RunResult &ds2 = results[5 * w + 1];
        const core::RunResult &ds4 = results[5 * w + 2];
        const core::RunResult &t2 = results[5 * w + 3];
        const core::RunResult &t4 = results[5 * w + 4];
        table.addRow({workload_names[w],
                      stats::Table::num(perfect.ipc, 3),
                      stats::Table::num(ds2.ipc, 3),
                      stats::Table::num(ds4.ipc, 3),
                      stats::Table::num(t2.ipc, 3),
                      stats::Table::num(t4.ipc, 3),
                      stats::Table::num(ds2.ipc / t2.ipc, 2),
                      stats::Table::num(ds4.ipc / t4.ipc, 2)});
    }
    return table;
}

} // namespace driver
} // namespace dscalar
