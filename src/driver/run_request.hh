/**
 * @file
 * The one driver entry point: a serializable RunRequest describing a
 * timing run, and runOne/runMany executing it.
 *
 * Every way of asking for a simulation goes through this type — the
 * dsrun CLI flags, the dsserve wire protocol, and library callers
 * (benches, tests, the fuzz oracle) — so a run can be described
 * once, shipped anywhere, and reproduced byte-for-byte. The
 * serialized form is line-oriented `key = value` text in the same
 * convention as dsfuzz repro files (common/kv.hh); parse and format
 * are exact inverses over the serializable subset, locked by
 * tests/test_run_request.cc.
 *
 * The historical convenience entry points (runSystem, runDataScalar,
 * runSweep, ...) remain in driver/driver.hh as thin wrappers over
 * runOne/runMany.
 */

#ifndef DSCALAR_DRIVER_RUN_REQUEST_HH
#define DSCALAR_DRIVER_RUN_REQUEST_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "func/inst_trace.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "prog/program.hh"
#include "stats/json_writer.hh"

namespace dscalar {
namespace driver {

class TraceCache;

/** The paper's Section 4.2 system parameters. */
core::SimConfig paperConfig();

/** Simulated system family for a timing run. */
enum class SystemKind : std::uint8_t {
    Perfect,     ///< perfect-data-cache upper bound
    DataScalar,  ///< the paper's machine
    Traditional  ///< request/response baseline
};

/** @return printable name of @p kind ("perfect" | "datascalar" |
 *  "traditional"). */
const char *systemKindName(SystemKind kind);

/** Parse a system name; std::nullopt when @p name matches no
 *  SystemKind. */
std::optional<SystemKind> parseSystemKind(const std::string &name);

/**
 * Parse a CLI system name.
 * @return false when @p name matches no SystemKind (@p out untouched).
 */
bool parseSystemKind(const std::string &name, SystemKind &out);

/** @return printable name of @p kind ("bus" | "ring"). */
const char *interconnectKindName(core::InterconnectKind kind);

/** Parse an interconnect name; std::nullopt when @p name matches no
 *  InterconnectKind. */
std::optional<core::InterconnectKind>
parseInterconnectKind(const std::string &name);

/**
 * Parse a CLI interconnect name.
 * @return false when @p name matches no InterconnectKind (@p out
 * untouched).
 */
bool parseInterconnectKind(const std::string &name,
                           core::InterconnectKind &out);

/**
 * One timing run, fully described.
 *
 * The serializable subset (everything formatRunRequest emits) covers
 * the registered-workload surface that dsrun flags and the dsserve
 * wire protocol expose. Library callers may additionally attach a
 * pre-built program, a pre-captured trace, or an external sampler —
 * those fields do not serialize and are documented as such.
 */
struct RunRequest
{
    // --- serializable: what to run -------------------------------
    std::string workload;    ///< registered workload name (key
                             ///  `workload`; CLI also accepts a .s
                             ///  path together with @ref program)
    unsigned scale = 1;      ///< workload build scale (key `scale`)
    SystemKind system = SystemKind::DataScalar; ///< key `system`
    /** Full simulator configuration. Parsing writes the serialized
     *  keys (`nodes`, `interconnect`, `max_insts`, `event_driven`,
     *  `tick_threads`, `fault_*`, `rerequest_timeout`, `bshr_hard`,
     *  `bshr_capacity`) into it on top of paperConfig(); unlisted
     *  SimConfig fields keep the paper defaults and can be adjusted
     *  directly by library callers (fig8-style parameter studies). */
    core::SimConfig config = paperConfig();
    unsigned blockPages = 1; ///< page-distribution block size
                             ///  (key `block_pages`)

    // --- serializable: run attachments ---------------------------
    /** Replay a shared captured trace when a TraceCache is available
     *  (key `trace_reuse`; byte-identical numbers either way). */
    bool traceReuse = true;
    /** Sample a per-node timeline every N cycles into the stats JSON
     *  (key `sample_interval`; 0 = off). */
    Cycle sampleInterval = 0;
    /** Write a Perfetto trace to this (server-side) file
     *  (key `perfetto`; "" = off). */
    std::string perfettoPath;
    /** Persistent trace store directory (key `trace_dir`; "" = off).
     *  A cache-less runOne (one-shot dsrun, a replayed repro) builds
     *  a private TraceCache over it so captures persist across
     *  processes; when a shared TraceCache is passed in, its own
     *  configured directory wins and this field is ignored. dsserve
     *  scrubs the key from wire requests — the daemon's store is
     *  controlled only by its own --trace-dir. */
    std::string traceDir;
    /** Instrument the run loop with the wall-clock phase profiler and
     *  append the `profile` stats group to the JSON export (key
     *  `profile`, emitted only when set; 0/absent = off). Wall-clock
     *  only — every simulated number stays byte-identical, so replies
     *  to profiled and unprofiled requests differ exactly by the
     *  profile group and the run_meta `profile` line. */
    bool profile = false;

    /** Bookkeeping: true once `rerequest_timeout` was set explicitly
     *  (finalizeRunRequest only applies the fault/hard-BSHR recovery
     *  default when it was not). */
    bool rerequestTimeoutSet = false;

    // --- non-serialized library attachments ----------------------
    /** Pre-built program; overrides @ref workload lookup. */
    std::shared_ptr<const prog::Program> program;
    /** Pre-captured trace to replay; overrides TraceCache lookup. */
    std::shared_ptr<const func::InstTrace> trace;
    /** External sampler (caller inspects it afterwards); suppresses
     *  the internally-owned one @ref sampleInterval would create. */
    obs::Sampler *sampler = nullptr;
    /** Stream protocol events to stderr (dsrun --trace). */
    bool traceToStderr = false;
    /** Keep a flight recorder attached and dump it on panic (dsrun
     *  and dsserve turn this on; library sweeps stay lean). */
    bool flightRecorder = false;
    /** External span recorder: runOne opens request-phase spans on it
     *  (build, trace acquisition, sim_run, ...) and, when @ref
     *  profile is also set, attaches it to the system as the phase
     *  profiler. dsserve threads its per-request recorder through
     *  here; nullptr (with profile set) makes runOne use a private
     *  one so the profile group still appears. */
    obs::SpanRecorder *spans = nullptr;
};

/** Outcome of one RunRequest. */
struct RunResponse
{
    core::RunResult result;   ///< cycles / instructions / IPC / stats
    std::string output;       ///< program syscall output
    bool drained = true;      ///< DataScalar protocolDrained()
    bool cacheHit = false;    ///< trace served from a warm cache entry
    stats::RunMeta meta;      ///< run_meta block of the stats JSON
    std::string timelineJson; ///< sampler timeline ("" when unsampled)
    /** Rejection reason; non-empty means the run never started. */
    std::string error;

    bool ok() const { return error.empty(); }

    /** The full stats JSON document (run_meta + groups + timeline) —
     *  byte-identical for the same request whether produced by a
     *  cold dsrun, a warm dsserve, or a direct runOne call. */
    std::string statsJson() const;
};

/**
 * Apply one serialized key to @p req.
 * @return false with @p error set ("unknown key ...", "unknown
 * system ...", "bad value ...") on any unrecognized or malformed
 * input; @p req is unchanged in that case.
 */
bool applyRunRequestKey(RunRequest &req, const std::string &key,
                        const std::string &value, std::string &error);

/**
 * Apply the CLI/auto recovery rule: when `rerequest_timeout` was
 * never set explicitly but drop faults or hard BSHR capacity are on,
 * arm re-request recovery at 2000 cycles (dropped data must be
 * recoverable). Parsing calls this; CLI front ends call it after
 * their flag loop.
 */
void finalizeRunRequest(RunRequest &req);

/**
 * Parse one newline-delimited `key = value` block: '#' comments and
 * leading/trailing blanks are ignored, the block ends at the first
 * blank line after any content (or EOF). Applies finalizeRunRequest.
 * @return false with @p error set on malformed input or when the
 * block contains no keys at all.
 */
bool parseRunRequest(std::istream &in, RunRequest &out,
                     std::string &error);

/** Serialize the full serializable subset, one `key = value` line
 *  per field, parseRunRequest-compatible. */
std::string formatRunRequest(const RunRequest &req);

/** The run_meta block every stats JSON export of @p req carries
 *  (shared by dsrun and dsserve so their documents byte-match). */
stats::RunMeta runMeta(const RunRequest &req);

/**
 * Execute one request. The program comes from @ref
 * RunRequest::program, else @p cache (built once per (workload,
 * scale)), else a fresh registry build; the replayed trace from
 * @ref RunRequest::trace, else @p cache when traceReuse is set, else
 * the run executes live. Unknown workloads and unwritable perfetto
 * paths come back as RunResponse::error rather than aborting (the
 * serving path must survive bad requests).
 */
RunResponse runOne(const RunRequest &req, TraceCache *cache = nullptr);

/**
 * Execute every request on up to @p jobs worker threads (1 = serial,
 * 0 = hardware concurrency), sharing @p cache. Responses come back
 * in request order regardless of scheduling, byte-identical to a
 * serial loop.
 */
std::vector<RunResponse> runMany(const std::vector<RunRequest> &requests,
                                 TraceCache &cache, unsigned jobs = 1);

/** As above without a cache: every request builds and executes its
 *  program independently. */
std::vector<RunResponse> runMany(const std::vector<RunRequest> &requests,
                                 unsigned jobs = 1);

} // namespace driver
} // namespace dscalar

#endif // DSCALAR_DRIVER_RUN_REQUEST_HH
