#include "driver/trace_cache.hh"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>

#include "func/trace_file.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

namespace {

/** Key string stamped into (and checked against) the trace file. */
std::string
storeKey(const std::string &workload, unsigned scale,
         InstSeq max_insts)
{
    return workload + "/s" + std::to_string(scale) + "/m" +
           std::to_string(max_insts);
}

} // namespace

void
TraceCache::setTraceDir(const std::string &dir)
{
    if (!dir.empty())
        ::mkdir(dir.c_str(), 0777); // one level; EEXIST is fine
    std::lock_guard<std::mutex> lock(mutex_);
    traceDir_ = dir;
}

std::string
TraceCache::traceDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traceDir_;
}

std::string
TraceCache::traceFileName(const std::string &workload, unsigned scale,
                          InstSeq max_insts, std::uint64_t digest)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    return workload + "-s" + std::to_string(scale) + "-m" +
           std::to_string(max_insts) + "-" + hex + ".dstrace";
}

std::shared_ptr<const prog::Program>
TraceCache::program(const std::string &workload, unsigned scale)
{
    std::promise<std::shared_ptr<const prog::Program>> promise;
    std::shared_future<std::shared_ptr<const prog::Program>> future;
    bool build_here = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = programs_.try_emplace(
            ProgramKey{workload, scale});
        if (inserted) {
            it->second = promise.get_future().share();
            build_here = true;
        }
        future = it->second;
    }
    // Build — and wait — outside the lock: waiters that get() while
    // holding the mutex would deadlock with a builder needing it,
    // and would serialize unrelated keys behind this one.
    if (build_here) {
        try {
            promise.set_value(std::make_shared<const prog::Program>(
                workloads::findWorkload(workload).build(scale)));
        } catch (...) {
            // Drop the entry so later calls retry instead of seeing
            // a broken promise forever; threads already waiting get
            // the original error through the future.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                programs_.erase(ProgramKey{workload, scale});
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return future.get();
}

std::shared_ptr<const func::InstTrace>
TraceCache::acquire(const std::string &workload, unsigned scale,
                    InstSeq max_insts)
{
    bool hit = false;
    return acquire(workload, scale, max_insts, hit);
}

std::shared_ptr<const func::InstTrace>
TraceCache::acquire(const std::string &workload, unsigned scale,
                    InstSeq max_insts, bool &hit)
{
    std::promise<std::shared_ptr<const func::InstTrace>> promise;
    std::shared_future<std::shared_ptr<const func::InstTrace>> future;
    bool capture_here = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = traces_.try_emplace(
            TraceKey{workload, scale, max_insts});
        if (inserted) {
            it->second = promise.get_future().share();
            capture_here = true;
        } else {
            ++hits_;
        }
        hit = !inserted;
        future = it->second;
    }
    // Capture — and wait — outside the lock. The capturing thread
    // re-enters the mutex via program(), so a waiter that held it
    // across get() would deadlock the sweep.
    if (capture_here) {
        try {
            std::shared_ptr<const prog::Program> prog =
                program(workload, scale);
            std::string dir;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                dir = traceDir_;
            }
            std::shared_ptr<const func::InstTrace> trace;
            std::string path;
            if (!dir.empty()) {
                // Try the persistent store first: a valid file for
                // this exact (key, image digest) replaces the
                // functional run with an mmap.
                path = dir + "/" +
                       traceFileName(workload, scale, max_insts,
                                     prog->imageDigest());
                std::string err;
                trace = func::loadTraceFile(
                    path, storeKey(workload, scale, max_insts),
                    prog->imageDigest(), err);
            }
            if (trace) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++diskHits_;
            } else {
                trace = func::InstTrace::capture(*prog, max_insts);
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++captures_;
                }
                if (!dir.empty()) {
                    std::string err;
                    if (func::saveTraceFile(
                            path, *trace,
                            storeKey(workload, scale, max_insts),
                            prog->imageDigest(), err)) {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++diskWrites_;
                    }
                    // A failed write leaves the store cold but the
                    // run correct; next process just re-captures.
                }
            }
            promise.set_value(std::move(trace));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                traces_.erase(TraceKey{workload, scale, max_insts});
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return future.get();
}

std::uint64_t
TraceCache::captures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return captures_;
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
TraceCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskHits_;
}

std::uint64_t
TraceCache::diskWrites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskWrites_;
}

std::size_t
TraceCache::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto &[key, future] : traces_) {
        // Only settled entries are counted; an in-flight capture's
        // size is unknown and waiting here would deadlock with it.
        if (future.valid() &&
            future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
            if (auto trace = future.get())
                total += trace->memoryBytes();
        }
    }
    return total;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    programs_.clear();
}

} // namespace driver
} // namespace dscalar
