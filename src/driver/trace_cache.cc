#include "driver/trace_cache.hh"

#include <chrono>

#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

std::shared_ptr<const prog::Program>
TraceCache::program(const std::string &workload, unsigned scale)
{
    std::promise<std::shared_ptr<const prog::Program>> promise;
    std::shared_future<std::shared_ptr<const prog::Program>> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = programs_.try_emplace(
            ProgramKey{workload, scale});
        if (!inserted)
            return it->second.get();
        it->second = promise.get_future().share();
        future = it->second;
    }
    // Build outside the lock; waiters block on the future, not the
    // mutex, so unrelated keys proceed concurrently.
    promise.set_value(std::make_shared<const prog::Program>(
        workloads::findWorkload(workload).build(scale)));
    return future.get();
}

std::shared_ptr<const func::InstTrace>
TraceCache::acquire(const std::string &workload, unsigned scale,
                    InstSeq max_insts)
{
    std::promise<std::shared_ptr<const func::InstTrace>> promise;
    std::shared_future<std::shared_ptr<const func::InstTrace>> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = traces_.try_emplace(
            TraceKey{workload, scale, max_insts});
        if (!inserted) {
            ++hits_;
            return it->second.get();
        }
        ++captures_;
        it->second = promise.get_future().share();
        future = it->second;
    }
    std::shared_ptr<const prog::Program> prog =
        program(workload, scale);
    promise.set_value(func::InstTrace::capture(*prog, max_insts));
    return future.get();
}

std::uint64_t
TraceCache::captures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return captures_;
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
TraceCache::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto &[key, future] : traces_) {
        // Only settled entries are counted; an in-flight capture's
        // size is unknown and waiting here would deadlock with it.
        if (future.valid() &&
            future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
            if (auto trace = future.get())
                total += trace->memoryBytes();
        }
    }
    return total;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    programs_.clear();
}

} // namespace driver
} // namespace dscalar
