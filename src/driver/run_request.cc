#include "driver/run_request.hh"

#include <fstream>
#include <iostream>
#include <sstream>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "common/kv.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "driver/trace_cache.hh"
#include "obs/flight_recorder.hh"
#include "obs/perfetto.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

namespace kv = common::kv;

core::SimConfig
paperConfig()
{
    // Section 4.2: 8-way issue, 256-entry RUU, LSQ = RUU/2, 16 KB
    // direct-mapped single-cycle split L1s (write-back,
    // write-noallocate data cache), 8 ns on-chip banks behind a
    // 256-bit bus at core clock, an 8-byte global bus at 1/10 core
    // clock, 2-cycle interface penalties, 128-entry 1 ns BSHRs.
    core::SimConfig cfg;
    cfg.core = ooo::CoreParams{};
    cfg.mem = mem::MainMemoryParams{};
    cfg.bus = interconnect::BusParams{};
    cfg.numNodes = 2;
    cfg.bshrLatency = 1;
    cfg.bshrCapacity = 128;
    return cfg;
}

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Perfect: return "perfect";
      case SystemKind::DataScalar: return "datascalar";
      case SystemKind::Traditional: return "traditional";
    }
    fatal("unknown SystemKind %d", static_cast<int>(kind));
}

std::optional<SystemKind>
parseSystemKind(const std::string &name)
{
    if (name == "perfect")
        return SystemKind::Perfect;
    if (name == "datascalar")
        return SystemKind::DataScalar;
    if (name == "traditional")
        return SystemKind::Traditional;
    return std::nullopt;
}

bool
parseSystemKind(const std::string &name, SystemKind &out)
{
    std::optional<SystemKind> kind = parseSystemKind(name);
    if (!kind)
        return false;
    out = *kind;
    return true;
}

const char *
interconnectKindName(core::InterconnectKind kind)
{
    switch (kind) {
      case core::InterconnectKind::Bus: return "bus";
      case core::InterconnectKind::Ring: return "ring";
    }
    fatal("unknown InterconnectKind %d", static_cast<int>(kind));
}

std::optional<core::InterconnectKind>
parseInterconnectKind(const std::string &name)
{
    if (name == "bus")
        return core::InterconnectKind::Bus;
    if (name == "ring")
        return core::InterconnectKind::Ring;
    return std::nullopt;
}

bool
parseInterconnectKind(const std::string &name,
                      core::InterconnectKind &out)
{
    std::optional<core::InterconnectKind> kind =
        parseInterconnectKind(name);
    if (!kind)
        return false;
    out = *kind;
    return true;
}

// -------------------------------------------------------------------
// Serialization
// -------------------------------------------------------------------

bool
applyRunRequestKey(RunRequest &req, const std::string &key,
                   const std::string &value, std::string &error)
{
    auto bad = [&](const char *expected) {
        error = "bad value '" + value + "' for '" + key +
                "' (expected " + expected + ")";
        return false;
    };

    // String-valued keys.
    if (key == "workload") {
        if (value.empty())
            return bad("a workload name");
        req.workload = value;
        return true;
    }
    if (key == "perfetto") {
        req.perfettoPath = value;
        return true;
    }
    if (key == "trace_dir") {
        req.traceDir = value;
        return true;
    }
    if (key == "system") {
        std::optional<SystemKind> kind = parseSystemKind(value);
        if (!kind) {
            error = "unknown system '" + value + "'";
            return false;
        }
        req.system = *kind;
        return true;
    }
    if (key == "interconnect") {
        std::optional<core::InterconnectKind> kind =
            parseInterconnectKind(value);
        if (!kind) {
            error = "unknown interconnect '" + value + "'";
            return false;
        }
        req.config.interconnect = *kind;
        return true;
    }

    // Probability-valued keys.
    if (key == "fault_drop" || key == "fault_dup" ||
        key == "fault_delay") {
        double p = 0.0;
        if (!kv::parseF64(value, p) || p < 0.0 || p > 1.0)
            return bad("a probability in [0,1]");
        if (key == "fault_drop")
            req.config.fault.dropProb = p;
        else if (key == "fault_dup")
            req.config.fault.dupProb = p;
        else
            req.config.fault.delayProb = p;
        return true;
    }

    // Everything else is an unsigned integer.
    std::uint64_t v = 0;
    if (!kv::parseU64(value, v)) {
        if (key == "scale" || key == "nodes" || key == "max_insts" ||
            key == "block_pages" || key == "event_driven" ||
            key == "tick_threads" || key == "fault_max_delay" ||
            key == "fault_seed" || key == "rerequest_timeout" ||
            key == "bshr_hard" || key == "bshr_capacity" ||
            key == "trace_reuse" || key == "sample_interval" ||
            key == "profile")
            return bad("an unsigned integer");
        error = "unknown key '" + key + "'";
        return false;
    }
    auto u = [v] { return static_cast<unsigned>(v); };
    if (key == "scale") {
        if (v == 0 || v > 4096)
            return bad("a scale in 1..4096");
        req.scale = u();
    } else if (key == "nodes") {
        if (v == 0 || v > 256)
            return bad("a node count in 1..256");
        req.config.numNodes = u();
    } else if (key == "block_pages") {
        if (v == 0)
            return bad("a positive page count");
        req.blockPages = u();
    } else if (key == "max_insts")
        req.config.maxInsts = v;
    else if (key == "event_driven")
        req.config.eventDriven = v != 0;
    else if (key == "tick_threads") {
        if (v > 256)
            return bad("a thread count in 0..256");
        req.config.tickThreads = u();
    } else if (key == "fault_max_delay")
        req.config.fault.maxDelay = v;
    else if (key == "fault_seed")
        req.config.fault.seed = v;
    else if (key == "rerequest_timeout") {
        req.config.rerequestTimeout = v;
        req.rerequestTimeoutSet = true;
    } else if (key == "bshr_hard")
        req.config.bshrHardCapacity = v != 0;
    else if (key == "bshr_capacity") {
        if (v == 0)
            return bad("a positive entry count");
        req.config.bshrCapacity = u();
    } else if (key == "trace_reuse")
        req.traceReuse = v != 0;
    else if (key == "sample_interval")
        req.sampleInterval = v;
    else if (key == "profile")
        req.profile = v != 0;
    else {
        error = "unknown key '" + key + "'";
        return false;
    }
    return true;
}

void
finalizeRunRequest(RunRequest &req)
{
    // Dropped data must be recoverable: arm re-request recovery by
    // default whenever drops or hard BSHR capacity are configured
    // without an explicit timeout (the dsrun rule since PR 2).
    if (!req.rerequestTimeoutSet &&
        (req.config.fault.dropProb > 0.0 || req.config.bshrHardCapacity))
        req.config.rerequestTimeout = 2000;
}

bool
parseRunRequest(std::istream &in, RunRequest &out, std::string &error)
{
    RunRequest r;
    bool any = false;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string t = kv::trim(line);
        if (t.empty()) {
            if (any)
                break; // a blank line terminates the block
            continue;
        }
        if (t[0] == '#')
            continue;
        std::string key, value;
        if (!kv::splitLine(t, key, value)) {
            error = "line " + std::to_string(lineno) + ": missing '=' or malformed value";
            return false;
        }
        if (!applyRunRequestKey(r, key, value, error)) {
            error = "line " + std::to_string(lineno) + ": " + error;
            return false;
        }
        any = true;
    }
    if (!any) {
        error = "empty request";
        return false;
    }
    finalizeRunRequest(r);
    out = std::move(r);
    return true;
}

std::string
formatRunRequest(const RunRequest &req)
{
    std::ostringstream os;
    kv::emit(os, "workload", req.workload);
    kv::emit(os, "scale", std::uint64_t(req.scale));
    kv::emit(os, "system", systemKindName(req.system));
    kv::emit(os, "nodes", std::uint64_t(req.config.numNodes));
    kv::emit(os, "interconnect",
             interconnectKindName(req.config.interconnect));
    kv::emit(os, "max_insts", std::uint64_t(req.config.maxInsts));
    kv::emit(os, "block_pages", std::uint64_t(req.blockPages));
    kv::emit(os, "event_driven",
             std::uint64_t(req.config.eventDriven ? 1 : 0));
    kv::emit(os, "tick_threads", std::uint64_t(req.config.tickThreads));
    kv::emit(os, "fault_drop", req.config.fault.dropProb);
    kv::emit(os, "fault_dup", req.config.fault.dupProb);
    kv::emit(os, "fault_delay", req.config.fault.delayProb);
    kv::emit(os, "fault_max_delay",
             std::uint64_t(req.config.fault.maxDelay));
    kv::emit(os, "fault_seed", req.config.fault.seed);
    kv::emit(os, "rerequest_timeout",
             std::uint64_t(req.config.rerequestTimeout));
    kv::emit(os, "bshr_hard",
             std::uint64_t(req.config.bshrHardCapacity ? 1 : 0));
    kv::emit(os, "bshr_capacity",
             std::uint64_t(req.config.bshrCapacity));
    kv::emit(os, "trace_reuse", std::uint64_t(req.traceReuse ? 1 : 0));
    kv::emit(os, "sample_interval", std::uint64_t(req.sampleInterval));
    if (req.profile)
        kv::emit(os, "profile", std::uint64_t(1));
    if (!req.perfettoPath.empty())
        kv::emit(os, "perfetto", req.perfettoPath);
    if (!req.traceDir.empty())
        kv::emit(os, "trace_dir", req.traceDir);
    return os.str();
}

stats::RunMeta
runMeta(const RunRequest &req)
{
    stats::RunMeta meta;
    meta.add("system", systemKindName(req.system));
    meta.add("target", req.workload);
    meta.add("scale", std::uint64_t(req.scale));
    meta.add("nodes", std::uint64_t(req.config.numNodes));
    meta.add("interconnect",
             interconnectKindName(req.config.interconnect));
    meta.add("block_pages", std::uint64_t(req.blockPages));
    meta.add("max_insts", std::uint64_t(req.config.maxInsts));
    meta.add("event_driven",
             std::uint64_t(req.config.eventDriven ? 1 : 0));
    meta.add("tick_threads", std::uint64_t(req.config.tickThreads));
    if (req.sampleInterval)
        meta.add("sample_interval", std::uint64_t(req.sampleInterval));
    if (req.profile)
        meta.add("profile", std::uint64_t(1));
    return meta;
}

std::string
RunResponse::statsJson() const
{
    if (!result.stats)
        return "";
    std::ostringstream os;
    stats::JsonWriter::ExtraWriter extra;
    if (!timelineJson.empty())
        extra = [this](std::ostream &o) { o << timelineJson; };
    stats::JsonWriter::write(os, meta, *result.stats, extra);
    return os.str();
}

// -------------------------------------------------------------------
// Execution
// -------------------------------------------------------------------

namespace {

bool
isRegisteredWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (name == w.name)
            return true;
    return false;
}

/**
 * Observability wiring shared by the three timing systems: optional
 * stderr tracing and Perfetto export (fanned out via the system's
 * TeeTraceSink; path "-" streams to stdout), an optional flight
 * recorder dumped by any panic (e.g. the run-loop watchdog), an
 * optional sampled timeline, optional request spans / the wall-clock
 * phase profiler (@p spans), and the run itself. @return false with
 * resp.error set when an attachment cannot be created.
 */
template <typename System>
bool
runAttached(System &sys, const RunRequest &req, RunResponse &resp,
            obs::SpanRecorder *spans)
{
    TextTraceSink text_sink(std::cerr);
    if (req.traceToStderr)
        sys.addTraceSink(&text_sink);

    std::ofstream perfetto_file;
    std::unique_ptr<obs::PerfettoTraceSink> perfetto;
    if (!req.perfettoPath.empty()) {
        std::ostream *perfetto_out = &std::cout;
        if (req.perfettoPath != "-") {
            perfetto_file.open(req.perfettoPath);
            if (!perfetto_file) {
                resp.error = "cannot write perfetto file '" +
                             req.perfettoPath + "'";
                return false;
            }
            perfetto_out = &perfetto_file;
        }
        perfetto =
            std::make_unique<obs::PerfettoTraceSink>(*perfetto_out);
        sys.addTraceSink(perfetto.get());
    }

    obs::FlightRecorder flight;
    if (req.flightRecorder) {
        sys.addTraceSink(&flight);
        flight.installPanicDump();
    }

    obs::Sampler local_sampler(req.sampleInterval ? req.sampleInterval
                                                  : 1);
    obs::Sampler *sampler = req.sampler;
    if (!sampler && req.sampleInterval)
        sampler = &local_sampler;
    if (sampler)
        sys.setSampler(sampler);

    if (spans && req.profile)
        sys.setProfiler(spans);

    {
        obs::SpanScope run_span(spans, "sim_run");
        resp.result = sys.run();
    }
    resp.output = sys.output();
    if (perfetto) {
        // The wall-clock track rides along in the same trace file,
        // next to the sim-time tracks (spans closed so far: build,
        // trace acquisition, sim_run).
        if (spans)
            perfetto->appendWallSpans(*spans);
        perfetto->finish();
    }
    if (sampler == &local_sampler) {
        std::ostringstream os;
        local_sampler.writeJson(os);
        resp.timelineJson = os.str();
    }
    return true;
}

} // namespace

RunResponse
runOne(const RunRequest &req, TraceCache *cache)
{
    RunResponse resp;
    resp.meta = runMeta(req);

    // Request spans: an external recorder (the serving path's), or a
    // private one when only the profile group was asked for. The
    // recorder observes wall time only — attach one to any request
    // and every simulated byte stays identical.
    obs::SpanRecorder local_spans(req.spans == nullptr && req.profile);
    obs::SpanRecorder *spans = req.spans;
    if (!spans && req.profile)
        spans = &local_spans;

    std::shared_ptr<const prog::Program> program = req.program;
    if (!program) {
        obs::SpanScope span(spans, "build");
        if (!isRegisteredWorkload(req.workload)) {
            resp.error = "unknown workload '" + req.workload + "'";
            return resp;
        }
        program =
            cache ? cache->program(req.workload, req.scale)
                  : std::make_shared<const prog::Program>(
                        workloads::findWorkload(req.workload)
                            .build(req.scale));
    }

    std::shared_ptr<const func::InstTrace> trace = req.trace;
    if (!trace && req.traceReuse && !req.program) {
        // The acquisition path only learns where the trace came from
        // as it runs; the span is renamed to what actually happened.
        obs::SpanScope span(spans, "trace_capture");
        if (cache) {
            bool hit = false;
            trace = cache->acquire(req.workload, req.scale,
                                   req.config.maxInsts, hit);
            resp.cacheHit = hit;
            if (hit)
                span.setName("trace_cache_hit");
        } else if (!req.traceDir.empty()) {
            // One-shot callers still get cross-process warmth: a
            // private cache over the persistent store mmap-loads a
            // stored capture or writes one back for the next run.
            TraceCache local;
            local.setTraceDir(req.traceDir);
            trace = local.acquire(req.workload, req.scale,
                                  req.config.maxInsts);
            resp.cacheHit = local.diskHits() > 0;
            if (resp.cacheHit)
                span.setName("trace_disk_load");
        }
    }

    const core::SimConfig &cfg = req.config;
    switch (req.system) {
      case SystemKind::Perfect: {
        baseline::PerfectSystem sys(*program, cfg, std::move(trace));
        runAttached(sys, req, resp, spans);
        break;
      }
      case SystemKind::Traditional: {
        baseline::TraditionalSystem sys(
            *program, cfg,
            figure7PageTable(*program, cfg.numNodes, req.blockPages),
            std::move(trace));
        runAttached(sys, req, resp, spans);
        break;
      }
      case SystemKind::DataScalar: {
        core::DataScalarSystem sys(
            *program, cfg,
            figure7PageTable(*program, cfg.numNodes, req.blockPages),
            std::move(trace));
        if (runAttached(sys, req, resp, spans))
            resp.drained = sys.protocolDrained();
        break;
      }
    }
    return resp;
}

std::vector<RunResponse>
runMany(const std::vector<RunRequest> &requests, TraceCache &cache,
        unsigned jobs)
{
    // Every request gets its own simulator state; the shared writes
    // are each task's pre-assigned response slot and the (internally
    // synchronized) trace cache.
    std::vector<RunResponse> responses(requests.size());
    common::parallelFor(jobs, requests.size(), [&](std::size_t i) {
        responses[i] = runOne(requests[i], &cache);
    });
    return responses;
}

std::vector<RunResponse>
runMany(const std::vector<RunRequest> &requests, unsigned jobs)
{
    std::vector<RunResponse> responses(requests.size());
    common::parallelFor(jobs, requests.size(), [&](std::size_t i) {
        responses[i] = runOne(requests[i], nullptr);
    });
    return responses;
}

} // namespace driver
} // namespace dscalar
