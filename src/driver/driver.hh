/**
 * @file
 * Experiment driver: shared machinery for the bench binaries,
 * examples, and integration tests — the paper's default
 * configuration, page-heat profiling, the Table 1 ESP traffic study,
 * the Table 2 datathread-length study, and one-call timing runs of
 * each system.
 */

#ifndef DSCALAR_DRIVER_DRIVER_HH
#define DSCALAR_DRIVER_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/datascalar.hh"
#include "core/distribution.hh"
#include "core/sim_config.hh"
#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "driver/run_request.hh"
#include "driver/trace_cache.hh"
#include "func/inst_trace.hh"
#include "obs/sampler.hh"
#include "prog/program.hh"
#include "stats/table.hh"

namespace dscalar {
namespace driver {

// paperConfig, SystemKind, the name/parse helpers, and the
// RunRequest/RunResponse runOne/runMany API live in
// driver/run_request.hh (re-exported by the include above).

/** The Table 1 / Section 3 study cache: 64 KB two-way 32 B lines,
 *  write-allocate write-back. */
mem::CacheParams table1CacheParams();

/**
 * Profile per-page access counts (instruction and data) with a
 * functional run, for hot-page replication decisions.
 */
core::PageHeat profilePages(const prog::Program &program,
                            InstSeq max_insts = 0);

/** Rederive the same page heat from a captured trace in one pass,
 *  without re-executing the program. Identical counts to the
 *  functional-run overload over the same prefix. */
core::PageHeat profilePages(const func::InstTrace &trace);

// -------------------------------------------------------------------
// Table 1: off-chip traffic eliminated by ESP
// -------------------------------------------------------------------

/** Traffic decomposition of an in-order cache-filtered run. */
struct TrafficResult
{
    std::uint64_t requestBytes = 0;
    std::uint64_t responseBytes = 0;
    std::uint64_t writeBackBytes = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t writeBacks = 0;

    std::uint64_t
    totalBytes() const
    {
        return requestBytes + responseBytes + writeBackBytes;
    }
    std::uint64_t
    totalTransactions() const
    {
        return requests + responses + writeBacks;
    }
    /** Fraction of bytes ESP removes (requests + write-backs). */
    double bytesEliminated() const;
    /** Fraction of transactions ESP removes. */
    double transactionsEliminated() const;
};

/**
 * Run @p program through an in-order simulation with the Table 1
 * cache (64 KB 2-way write-allocate write-back by default) and
 * decompose the resulting off-chip traffic.
 */
TrafficResult measureEspTraffic(const prog::Program &program,
                                InstSeq max_insts = 0,
                                const mem::CacheParams &dcache =
                                    table1CacheParams());

/** Same decomposition from a captured trace, one pass, no
 *  re-execution. Byte-identical to the functional-run overload. */
TrafficResult measureEspTraffic(const func::InstTrace &trace,
                                const mem::CacheParams &dcache =
                                    table1CacheParams());

// -------------------------------------------------------------------
// Table 2: datathread-length approximation
// -------------------------------------------------------------------

/** Arithmetic-mean run length of consecutive same-node references. */
class RunCounter
{
  public:
    /** Feed one communicated reference local to @p node. */
    void feed(NodeId node);

    double mean() const;
    std::uint64_t refs() const { return refs_; }
    std::uint64_t runs() const;

  private:
    bool active_ = false;
    NodeId curNode_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t completedRuns_ = 0;
};

/** Table 2 row: datathread approximations for one benchmark. */
struct DatathreadResult
{
    core::ReplicationReport replicated;
    double meanAll = 0.0;   ///< all cache misses
    double meanText = 0.0;  ///< instruction misses only
    double meanData = 0.0;  ///< data misses only
    double meanRepl = 0.0;  ///< contiguous replicated-page accesses
    std::uint64_t missRefs = 0;
};

/**
 * Measure datathread lengths for @p program under the placement in
 * @p ptable: cache-filtered miss streams (paper Section 3.2 cache:
 * 64 KB two-way) attributed to owning nodes.
 */
DatathreadResult measureDatathreads(const prog::Program &program,
                                    const mem::PageTable &ptable,
                                    const core::ReplicationReport &rep,
                                    InstSeq max_insts = 0);

/** Same study from a captured trace, one pass, no re-execution.
 *  Byte-identical to the functional-run overload. */
DatathreadResult measureDatathreads(const func::InstTrace &trace,
                                    const mem::PageTable &ptable,
                                    const core::ReplicationReport &rep);

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

/** Distribute pages for an N-node run (no static data replication,
 *  text replicated — the paper's Figure 7 setup). */
mem::PageTable figure7PageTable(const prog::Program &program,
                                unsigned num_nodes,
                                unsigned block_pages = 1);

/**
 * Run @p program on one system family under @p config — a thin
 * wrapper over runOne for callers that already hold a built program.
 * @p block_pages sets the page-distribution block size (ignored by
 * Perfect, which has no page table). The returned RunResult carries
 * the full stat snapshot (RunResult::stats). A non-null @p sampler
 * is registered with the system (setSampler) and collects its
 * timeline during the run without perturbing it.
 */
core::RunResult runSystem(SystemKind system,
                          const prog::Program &program,
                          const core::SimConfig &config,
                          unsigned block_pages = 1,
                          std::shared_ptr<const func::InstTrace> trace =
                              nullptr,
                          obs::Sampler *sampler = nullptr);

/** Run an N-node DataScalar system; returns IPC and cycles. */
core::RunResult runDataScalar(const prog::Program &program,
                              const core::SimConfig &config);

/** Run the traditional system with 1/numNodes memory on-chip. */
core::RunResult runTraditional(const prog::Program &program,
                               const core::SimConfig &config);

/** Run the perfect-data-cache system. */
core::RunResult runPerfect(const prog::Program &program,
                           const core::SimConfig &config);

// -------------------------------------------------------------------
// Parallel experiment sweeps
// -------------------------------------------------------------------

/**
 * One independent timing-simulation point of a sweep: a registered
 * workload run on one system under one configuration. Points share
 * nothing, so a sweep is embarrassingly parallel.
 */
struct SweepPoint
{
    std::string workload; ///< registered workload name
    SystemKind system = SystemKind::DataScalar;
    core::SimConfig config;
    unsigned scale = 1;      ///< workload build scale
    unsigned blockPages = 1; ///< page-distribution block size
};

/** The RunRequest equivalent of @p pt (runSweep is runMany over
 *  these). */
RunRequest toRunRequest(const SweepPoint &pt);

/**
 * Run every point on up to @p jobs worker threads (1 = serial,
 * 0 = hardware concurrency). Results come back in point order
 * regardless of scheduling, so a parallel sweep is byte-identical
 * to a serial one.
 *
 * With @p reuse_traces (the default), each distinct
 * (workload, scale, maxInsts) is built and functionally executed
 * once into a shared trace that every matching point replays; the
 * SPSD property makes every reported number byte-identical to
 * per-point execution, only faster. Pass false to re-execute per
 * point (the pre-cache behavior).
 */
std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, unsigned jobs = 1,
         bool reuse_traces = true);

/**
 * As above, but captures into (and reuses traces already in) a
 * caller-owned @p cache, letting several sweeps over the same
 * workloads share one set of captures.
 */
std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, TraceCache &cache,
         unsigned jobs = 1);

/**
 * The Figure 7 sweep — perfect, DataScalar at 2/4 nodes, and the
 * traditional system at 1/2 and 1/4 memory — for each named
 * workload, as a formatted IPC table. All five points of every row
 * run concurrently under @p jobs. @p event_driven toggles cycle
 * skipping in every point (the table is identical either way; see
 * docs/PERF.md).
 */
stats::Table
fig7IpcTable(const std::vector<std::string> &workload_names,
             InstSeq budget, unsigned jobs = 1,
             bool event_driven = true, bool trace_reuse = true);

} // namespace driver
} // namespace dscalar

#endif // DSCALAR_DRIVER_DRIVER_HH
