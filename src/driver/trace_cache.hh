/**
 * @file
 * Shared capture-once store of dynamic instruction traces (and built
 * programs) for experiment sweeps.
 *
 * A fig8-style sweep runs the same workload at dozens of
 * (system × configuration) points; the SPSD property means every
 * point consumes the identical dynamic stream, so executing it
 * functionally once and replaying it everywhere changes no reported
 * number — only wall-clock. The cache is safe for concurrent use by
 * runSweep's worker threads: the first thread to ask for a
 * (workload, scale, maxInsts) key captures while later askers block
 * on the same future, so each key is captured exactly once per
 * cache no matter the job count.
 *
 * With a trace directory configured (setTraceDir), the cache is also
 * the persistent trace store's client: a miss first tries to mmap a
 * previously saved trace file for the key (validated against the
 * program's image digest; see func/trace_file.hh), and a genuine
 * functional capture is atomically written back so every later
 * process — including a restarted dsserve — starts warm.
 */

#ifndef DSCALAR_DRIVER_TRACE_CACHE_HH
#define DSCALAR_DRIVER_TRACE_CACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.hh"
#include "func/inst_trace.hh"
#include "prog/program.hh"

namespace dscalar {
namespace driver {

/** Thread-safe get-or-capture cache of programs and their traces. */
class TraceCache
{
  public:
    /**
     * The captured trace for registered workload @p workload built
     * at @p scale and executed for @p max_insts instructions
     * (0 = completion). Blocks until the capture (by this or
     * another thread) finishes.
     */
    std::shared_ptr<const func::InstTrace>
    acquire(const std::string &workload, unsigned scale,
            InstSeq max_insts);

    /** As above; @p hit reports whether the key was already cached
     *  (i.e. this call was served without a new capture). */
    std::shared_ptr<const func::InstTrace>
    acquire(const std::string &workload, unsigned scale,
            InstSeq max_insts, bool &hit);

    /** The built program for (workload, scale), assembled once. */
    std::shared_ptr<const prog::Program>
    program(const std::string &workload, unsigned scale);

    /**
     * Enable the persistent trace store under @p dir ("" disables).
     * The directory is created if missing (one level). Misses then
     * load `<workload>-s<scale>-m<maxInsts>-<digest>.dstrace` when a
     * valid file exists and write one back after a fresh capture.
     */
    void setTraceDir(const std::string &dir);
    /** The configured trace store directory ("" = disabled). */
    std::string traceDir() const;

    /** On-disk file name for one key (relative to the trace dir). */
    static std::string traceFileName(const std::string &workload,
                                     unsigned scale,
                                     InstSeq max_insts,
                                     std::uint64_t digest);

    /** Functional captures actually executed. */
    std::uint64_t captures() const;
    /** acquire() calls served without a new capture. */
    std::uint64_t hits() const;
    /** Misses served by mmap-loading a stored trace file. */
    std::uint64_t diskHits() const;
    /** Trace files written after a fresh capture. */
    std::uint64_t diskWrites() const;
    /** Approximate bytes held across all cached traces. */
    std::size_t memoryBytes() const;

    /** Drop every cached program and trace. */
    void clear();

  private:
    struct TraceKey
    {
        std::string workload;
        unsigned scale;
        InstSeq maxInsts;
        auto operator<=>(const TraceKey &) const = default;
    };
    struct ProgramKey
    {
        std::string workload;
        unsigned scale;
        auto operator<=>(const ProgramKey &) const = default;
    };

    mutable std::mutex mutex_;
    std::map<TraceKey,
             std::shared_future<std::shared_ptr<const func::InstTrace>>>
        traces_;
    std::map<ProgramKey,
             std::shared_future<std::shared_ptr<const prog::Program>>>
        programs_;
    std::uint64_t captures_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t diskWrites_ = 0;
    std::string traceDir_;
};

} // namespace driver
} // namespace dscalar

#endif // DSCALAR_DRIVER_TRACE_CACHE_HH
