#include "ooo/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "prog/layout.hh"

namespace dscalar {
namespace ooo {

using isa::OpClass;

Cycle
CoreParams::opLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return intAluLat;
      case OpClass::IntMul: return intMulLat;
      case OpClass::IntDiv: return intDivLat;
      case OpClass::FpAdd: return fpAddLat;
      case OpClass::FpMul: return fpMulLat;
      case OpClass::FpDiv: return fpDivLat;
      case OpClass::Ctrl: return 1;
      default: return 1;
    }
}

unsigned
CoreParams::fuPool(OpClass cls)
{
    switch (cls) {
      case OpClass::IntMul:
      case OpClass::IntDiv:
        return 1;
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return 2;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return 3;
      default:
        return 0; // simple ALU / control / misc
    }
}

OoOCore::OoOCore(const CoreParams &params, OracleStream &stream,
                 MemBackend &backend)
    : params_(params), stream_(stream), backend_(backend),
      backendMayStall_(backend.fetchesMayStall()),
      icache_(params.icache), dcache_(params.dcache)
{
    fatal_if(params_.ruuEntries == 0, "RUU must have entries");
    fatal_if(params_.lsqEntries == 0, "LSQ must have entries");
    std::fill(std::begin(lastWriter_), std::end(lastWriter_), 0);

    // TLBs: one fully associative set of page-granular entries.
    auto make_tlb = [](unsigned entries) {
        return std::make_unique<mem::Cache>(mem::CacheParams{
            entries * prog::pageSize, entries,
            static_cast<unsigned>(prog::pageSize), true});
    };
    if (params_.dtlbEntries)
        dtlb_ = make_tlb(params_.dtlbEntries);
    if (params_.itlbEntries)
        itlb_ = make_tlb(params_.itlbEntries);
}

Cycle
OoOCore::tlbPenalty(mem::Cache *tlb, Addr addr,
                    std::uint64_t &miss_stat)
{
    if (!tlb)
        return 0;
    if (tlb->access(addr, false).hit)
        return 0;
    ++miss_stat;
    return params_.tlbWalkCycles;
}

void
OoOCore::tick(Cycle now)
{
    if (done_)
        return;
    tickProgressed_ = false;
    processCompletions(now);
    doCommit(now);
    doIssue(now);
    doFetch(now);
}

Cycle
OoOCore::nextEventCycle(Cycle now) const
{
    if (done_)
        return cycleMax;

    // Fast path: a tick that completed, committed, issued, or
    // dispatched anything may well act again next cycle. now + 1 is
    // always a conservative answer, and skipping the full scan below
    // keeps the query O(1) on busy cores, where it would otherwise
    // re-do most of the issue stage's work every cycle. Stalled
    // cores — the case skipping exists for — take the precise path.
    if (tickProgressed_)
        return now + 1;

    // An empty window resolves within one tick: either fetch refills
    // it, or doCommit's empty-window probe discovers the end of a
    // truncated stream and flips done_.
    if (window_.empty())
        return now + 1;

    // Commit: the head is complete but this cycle's commit width ran
    // out before reaching it.
    if (window_.front().completed)
        return now + 1;

    // Issue: a ready uop that is not waiting on a store address or an
    // MSHR entry can issue next cycle — FU pools and issue width are
    // per-cycle budgets. Blocked loads unblock only through events
    // that are themselves tracked: the blocking store issuing (it is
    // ready, or becomes so via a completion), a commit freeing a DCUB
    // entry, or an external fill (which re-ticks the core anyway).
    for (InstSeq seq : readyList_) {
        const Uop &u = uop(seq);
        if (!u.isLoad || (!loadBlockedByStore(u) && !mshrStalled(u) &&
                          !backendStalled(u)))
            return now + 1;
    }

    Cycle next = cycleMax;

    // Scheduled completions: FU latencies, cache hits, arrived fills.
    if (!completionEvents_.empty())
        next = completionEvents_.top().when;

    // Fetch.
    if (!fetchEnded_) {
        if (now < fetchStallUntil_) {
            next = std::min(next, fetchStallUntil_);
        } else if (window_.size() < params_.ruuEntries) {
            if (!stream_.available(nextFetchSeq_))
                return now + 1; // a tick must discover the stream end
            const func::DynInst &di = stream_.get(nextFetchSeq_);
            if (!di.inst.isMem() || lsqOccupancy_ < params_.lsqEntries)
                return now + 1;
            // LSQ full on a memory instruction: dispatch resumes only
            // after a commit, which a completion or fill must unblock.
        }
        // Window full: same — fetch resumes only after a commit.
    }

    return std::max(next, now + 1);
}

void
OoOCore::scheduleCompletion(InstSeq seq, Cycle when)
{
    completionEvents_.push(
        CompletionEvent{when, completionOrder_++, seq});
}

void
OoOCore::processCompletions(Cycle now)
{
    while (!completionEvents_.empty() &&
           completionEvents_.top().when <= now) {
        CompletionEvent e = completionEvents_.top();
        completionEvents_.pop();
        tickProgressed_ = true;
        complete(e.seq, e.when);
    }
}

void
OoOCore::complete(InstSeq seq, Cycle now)
{
    Uop &u = uop(seq);
    panic_if(u.completed, "double completion of %llu",
             (unsigned long long)seq);
    u.completed = true;
    u.readyAt = now;
    for (InstSeq consumer : u.consumers) {
        Uop &c = uop(consumer);
        panic_if(c.waitCount == 0, "consumer waitCount underflow");
        if (--c.waitCount == 0 && !c.issued)
            insertReady(consumer);
    }
    u.consumers.clear();
}

// -------------------------------------------------------------------
// Commit
// -------------------------------------------------------------------

void
OoOCore::doCommit(Cycle now)
{
    // A truncated stream's end may only be discovered by the fetch
    // probe that runs *after* the final commit (tiny windows): catch
    // up here, or the core would never report done.
    if (window_.empty() && stream_.ended() &&
        nextCommitSeq_ == stream_.endSeq()) {
        done_ = true;
        return;
    }
    for (unsigned n = 0; n < params_.commitWidth; ++n) {
        if (window_.empty())
            return;
        Uop &u = window_.front();
        if (!u.completed || u.readyAt > now)
            return;

        if (!params_.perfectData) {
            if (u.isLoad)
                commitLoad(u, now);
            else if (u.isStore)
                commitStore(u, now);
        } else if (u.usesDcub) {
            releaseDcubUser(u.lineAddr);
        }

        ++stats_.committed;
        tickProgressed_ = true;
        if (u.isLoad)
            ++stats_.loads;
        if (u.isStore) {
            ++stats_.stores;
            panic_if(windowStores_.empty() ||
                         windowStores_.front() != u.seq,
                     "store queue out of sync");
            windowStores_.pop_front();
        }
        if (u.isLoad || u.isStore) {
            panic_if(lsqOccupancy_ == 0, "LSQ underflow");
            --lsqOccupancy_;
        }

        window_.pop_front();
        ++windowBase_;
        ++nextCommitSeq_;

        if (stream_.ended() && nextCommitSeq_ == stream_.endSeq()) {
            done_ = true;
            return;
        }
    }
}

void
OoOCore::commitLoad(Uop &u, Cycle now)
{
    mem::CacheAccessResult res = dcache_.access(u.lineAddr, false);
    if (res.hit) {
        if (!u.issueHit) {
            ++stats_.falseMisses;
            if (traceSink_) {
                traceSink_->event({traceNode_, now,
                                   TraceEventKind::FalseMiss,
                                   u.lineAddr});
            }
        }
    } else {
        ++stats_.canonicalLoadMisses;
        if (u.issueHit) {
            ++stats_.falseHits;
            if (traceSink_) {
                traceSink_->event({traceNode_, now,
                                   TraceEventKind::FalseHit,
                                   u.lineAddr});
            }
        }
        if (res.evicted && res.victimDirty) {
            ++stats_.dirtyWriteBacks;
            backend_.writeBack(res.victimAddr, now);
        }
        auto it = dcub_.find(u.lineAddr);
        if (it != dcub_.end() && !it->second.claimed) {
            // The one fetch this node performed for this line
            // episode is assigned to this (canonical) miss.
            it->second.claimed = true;
        } else {
            // Pure false hit: this node never fetched the line this
            // episode. Owners repair with a reparative broadcast;
            // non-owners squash the incoming one.
            ++stats_.unclaimedRepairs;
            backend_.onUnclaimedCanonicalMiss(u.lineAddr, now);
        }
    }
    if (u.usesDcub)
        releaseDcubUser(u.lineAddr);
}

void
OoOCore::commitStore(Uop &u, Cycle now)
{
    // Stores translate at commit; the refill is modelled, the walk
    // latency is off the critical path (stores are not waited on).
    tlbPenalty(dtlb_.get(), u.effAddr, stats_.dtlbMisses);
    mem::CacheAccessResult res = dcache_.access(u.lineAddr, true);
    if (res.hit)
        return;
    ++stats_.storeCommitMisses;
    if (res.allocated) {
        // Write-allocate policy (ablation): the line must be fetched
        // just to be overwritten -- the inter-processor message the
        // paper's write-noallocate choice avoids. A store-allocate
        // is a canonical miss like any other: it claims an in-flight
        // load fetch for the same line if one exists, else raises
        // the fetch itself.
        if (res.evicted && res.victimDirty) {
            ++stats_.dirtyWriteBacks;
            backend_.writeBack(res.victimAddr, now);
        }
        auto it = dcub_.find(u.lineAddr);
        if (it != dcub_.end() && !it->second.claimed)
            it->second.claimed = true;
        else
            backend_.onUnclaimedCanonicalMiss(u.lineAddr, now);
    } else {
        // Write-noallocate: the word is written through to memory.
        backend_.storeMiss(u.lineAddr, now);
    }
}

void
OoOCore::releaseDcubUser(Addr line)
{
    auto it = dcub_.find(line);
    panic_if(it == dcub_.end(), "DCUB entry for 0x%llx missing",
             (unsigned long long)line);
    DcubEntry &e = it->second;
    panic_if(e.users == 0, "DCUB user underflow");
    if (--e.users == 0) {
        panic_if(!e.waiters.empty(), "DCUB freed with waiters");
        panic_if(e.pending, "DCUB freed while pending");
        panic_if(!e.claimed && !params_.perfectData,
                 "DCUB entry for 0x%llx freed unclaimed",
                 (unsigned long long)line);
        dcub_.erase(it);
    }
}

// -------------------------------------------------------------------
// Issue
// -------------------------------------------------------------------

bool
OoOCore::loadBlockedByStore(const Uop &u) const
{
    // Dispatch pushes stores in ascending seq and issue erases in
    // place, so the front is always the oldest unknown address.
    return !unknownAddrStores_.empty() &&
           unknownAddrStores_.front() < u.seq;
}

bool
OoOCore::mshrStalled(const Uop &u) const
{
    // A load that would start a new line fill must wait for a free
    // MSHR/DCUB entry (merging loads may proceed). The oldest
    // instruction always bypasses the limit: without this reserve,
    // two nodes whose MSHRs are full of waits on each other's
    // broadcasts deadlock.
    return params_.maxOutstandingFills != 0 &&
           u.seq != windowBase_ &&
           dcub_.size() >= params_.maxOutstandingFills &&
           !params_.perfectData &&
           dcub_.find(u.lineAddr) == dcub_.end() &&
           !dcache_.probe(u.lineAddr) && !forwardingStore(u);
}

bool
OoOCore::backendStalled(const Uop &u) const
{
    // Backend (hard BSHR) flow control mirrors the MSHR reserve: a
    // load that would start a new fetch waits until the backend can
    // accept one, and the oldest instruction bypasses the check so
    // forward progress survives a full bank.
    return backendMayStall_ && u.seq != windowBase_ &&
           !params_.perfectData &&
           dcub_.find(u.lineAddr) == dcub_.end() &&
           !dcache_.probe(u.lineAddr) && !forwardingStore(u) &&
           !backend_.canAcceptFetch(u.lineAddr);
}

const OoOCore::Uop *
OoOCore::forwardingStore(const Uop &u) const
{
    for (auto rit = windowStores_.rbegin(); rit != windowStores_.rend();
         ++rit) {
        if (*rit >= u.seq)
            continue;
        const Uop &st = uop(*rit);
        if (!st.issued)
            continue; // address unknown; caller checked blocking
        bool overlap = st.effAddr < u.effAddr + u.memSize &&
                       u.effAddr < st.effAddr + st.memSize;
        if (overlap)
            return &st;
    }
    return nullptr;
}

void
OoOCore::doIssue(Cycle now)
{
    unsigned issued = 0;
    // Per-cycle functional-unit pool budgets (0 = unlimited).
    unsigned pool_left[4] = {
        params_.intAluUnits ? params_.intAluUnits : ~0u,
        params_.intMulUnits ? params_.intMulUnits : ~0u,
        params_.fpUnits ? params_.fpUnits : ~0u,
        params_.memPorts ? params_.memPorts : ~0u,
    };
    // One pass over the ready list in ascending seq (the order the
    // former std::set iterated in), compacting out the entries that
    // issue; blocked entries and everything past the issue-width
    // budget stay, in order, without reallocating.
    std::size_t out = 0;
    for (std::size_t in = 0; in < readyList_.size(); ++in) {
        InstSeq seq = readyList_[in];
        if (issued >= params_.issueWidth) {
            readyList_[out++] = seq;
            continue;
        }
        Uop &u = uop(seq);
        panic_if(u.issued, "ready list holds issued uop");

        if (u.isLoad && loadBlockedByStore(u)) {
            ++stats_.memOrderStallEvents;
            readyList_[out++] = seq;
            continue;
        }

        if (u.isLoad && mshrStalled(u)) {
            ++stats_.mshrStallEvents;
            readyList_[out++] = seq;
            continue;
        }

        if (u.isLoad && backendStalled(u)) {
            ++stats_.backendStallEvents;
            readyList_[out++] = seq;
            continue;
        }

        unsigned pool = CoreParams::fuPool(u.cls);
        if (pool_left[pool] == 0) {
            ++stats_.fuStallEvents;
            readyList_[out++] = seq;
            continue;
        }
        --pool_left[pool];

        u.issued = true;
        if (u.isLoad) {
            issueLoad(u, now);
        } else if (u.isStore) {
            auto st = std::find(unknownAddrStores_.begin(),
                                unknownAddrStores_.end(), u.seq);
            panic_if(st == unknownAddrStores_.end(),
                     "issuing store missing from address queue");
            unknownAddrStores_.erase(st);
            scheduleCompletion(u.seq, now + 1);
        } else {
            scheduleCompletion(u.seq, now + params_.opLatency(u.cls));
        }
        ++issued;
        tickProgressed_ = true;
    }
    readyList_.resize(out);
}

void
OoOCore::issueLoad(Uop &u, Cycle now)
{
    // Store-to-load forwarding: single cycle from the LSQ.
    if (const Uop *st = forwardingStore(u)) {
        (void)st;
        ++stats_.forwardedLoads;
        ++stats_.loadIssueHits;
        u.issueHit = true;
        scheduleCompletion(u.seq, now + 1);
        return;
    }

    if (params_.perfectData) {
        u.issueHit = true;
        scheduleCompletion(u.seq, now + params_.l1Latency);
        return;
    }

    // Address translation: a dTLB miss walks the (local, replicated)
    // page table before the cache access can start.
    Cycle mnow =
        now + tlbPenalty(dtlb_.get(), u.effAddr, stats_.dtlbMisses);

    // In-flight line in the DCUB: the episode's one miss already
    // belongs to the fetch initiator; this access merges.
    auto it = dcub_.find(u.lineAddr);
    if (it != dcub_.end()) {
        DcubEntry &e = it->second;
        u.usesDcub = true;
        u.issueHit = true;
        ++e.users;
        ++stats_.loadIssueHits;
        if (e.pending) {
            u.waitingFill = true;
            e.waiters.push_back(u.seq);
        } else {
            scheduleCompletion(u.seq, std::max(mnow + 1, e.readyAt));
        }
        return;
    }

    // Commit-updated tag array.
    if (dcache_.probe(u.lineAddr)) {
        u.issueHit = true;
        ++stats_.loadIssueHits;
        scheduleCompletion(u.seq, mnow + params_.l1Latency);
        return;
    }

    // Issue-time miss: allocate a DCUB entry and start the fetch.
    u.issueHit = false;
    u.usesDcub = true;
    ++stats_.loadIssueMisses;
    DcubEntry entry;
    entry.users = 1;
    FillResult fill = backend_.startLineFetch(u.lineAddr, mnow);
    if (fill.readyAt == cycleMax) {
        entry.pending = true;
        u.waitingFill = true;
        entry.waiters.push_back(u.seq);
    } else {
        entry.pending = false;
        entry.readyAt = fill.readyAt;
        scheduleCompletion(u.seq, std::max(mnow + 1, fill.readyAt));
    }
    dcub_.emplace(u.lineAddr, std::move(entry));
    stats_.maxDcubOccupancy =
        std::max<std::uint64_t>(stats_.maxDcubOccupancy, dcub_.size());
}

void
OoOCore::fillArrived(Addr line, Cycle ready_at, Cycle now)
{
    auto it = dcub_.find(line);
    panic_if(it == dcub_.end(), "fill for 0x%llx without DCUB entry",
             (unsigned long long)line);
    DcubEntry &e = it->second;
    panic_if(!e.pending, "fill for non-pending DCUB entry 0x%llx",
             (unsigned long long)line);
    e.pending = false;
    e.readyAt = std::max(ready_at, now + 1);
    for (InstSeq seq : e.waiters) {
        Uop &u = uop(seq);
        u.waitingFill = false;
        scheduleCompletion(seq, e.readyAt);
    }
    e.waiters.clear();
}

bool
OoOCore::hasPendingFill(Addr line) const
{
    auto it = dcub_.find(line);
    return it != dcub_.end() && it->second.pending;
}

// -------------------------------------------------------------------
// Fetch / dispatch
// -------------------------------------------------------------------

void
OoOCore::doFetch(Cycle now)
{
    if (fetchEnded_ || now < fetchStallUntil_)
        return;

    for (unsigned f = 0; f < params_.fetchWidth; ++f) {
        if (window_.size() >= params_.ruuEntries)
            return;
        if (!stream_.available(nextFetchSeq_)) {
            fetchEnded_ = true;
            return;
        }
        const func::DynInst &di = stream_.get(nextFetchSeq_);

        if (di.inst.isMem() && lsqOccupancy_ >= params_.lsqEntries)
            return;

        Addr iline = icache_.lineAlign(di.pc);
        if (iline != lastFetchLine_) {
            Cycle itlb_pen =
                tlbPenalty(itlb_.get(), di.pc, stats_.itlbMisses);
            bool hit = icache_.probe(iline);
            icache_.access(iline, false);
            lastFetchLine_ = iline;
            if (!hit) {
                ++stats_.icacheMisses;
                fetchStallUntil_ =
                    backend_.fetchInstLine(iline, now + itlb_pen);
                return;
            }
            if (itlb_pen) {
                fetchStallUntil_ = now + itlb_pen;
                return;
            }
        }

        // Dispatch into the RUU.
        Uop u;
        u.seq = di.seq;
        u.inst = di.inst;
        u.cls = di.inst.info().opClass;
        u.isLoad = di.inst.isLoad();
        u.isStore = di.inst.isStore();
        if (u.isLoad || u.isStore) {
            u.effAddr = di.effAddr;
            u.memSize = di.memSize;
            u.lineAddr = dcache_.lineAlign(di.effAddr);
        }

        RegIndex srcs[2];
        int nsrc = di.inst.srcRegs(srcs);
        for (int i = 0; i < nsrc; ++i) {
            InstSeq lw = lastWriter_[srcs[i]];
            if (lw != 0 && lw - 1 >= windowBase_) {
                Uop &producer = uop(lw - 1);
                if (!producer.completed) {
                    producer.consumers.push_back(u.seq);
                    ++u.waitCount;
                }
            }
        }

        bool ready = (u.waitCount == 0);
        InstSeq seq = u.seq;
        int dest = di.inst.destReg();
        window_.push_back(std::move(u));
        if (dest >= 0)
            lastWriter_[dest] = seq + 1;
        if (window_.back().isStore) {
            windowStores_.push_back(seq);
            unknownAddrStores_.push_back(seq);
        }
        if (window_.back().isLoad || window_.back().isStore)
            ++lsqOccupancy_;
        if (ready)
            readyList_.push_back(seq); // seq is the window maximum

        ++nextFetchSeq_;
        tickProgressed_ = true;
    }
}

} // namespace ooo
} // namespace dscalar
