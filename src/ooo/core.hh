/**
 * @file
 * Out-of-order core in the paper's configuration (Section 4.2):
 * 8-way issue, a 256-entry Register Update Unit tracking
 * dependencies, a load/store queue of half the RUU size, loads sent
 * to the cache at issue time, stores at commit time, single-cycle
 * store-to-load forwarding, perfect branch prediction, non-blocking
 * split L1 caches with an arbitrary number of outstanding misses.
 *
 * The data cache's tag state is only updated at instruction commit,
 * through a Data Commit Update Buffer (DCUB). Each load records its
 * issue-time hit/miss outcome; at commit the canonical in-order
 * outcome is recomputed and disparities (false hits / false misses)
 * are detected and repaired exactly as Section 4.1 describes. The
 * commit-updated tag array is therefore identical at every node of a
 * DataScalar system — the cache correspondence invariant.
 */

#ifndef DSCALAR_OOO_CORE_HH
#define DSCALAR_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"

namespace dscalar {
namespace ooo {

/** Microarchitectural parameters (defaults = the paper's). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned ruuEntries = 256;
    unsigned lsqEntries = 128;
    Cycle l1Latency = 1;

    mem::CacheParams icache{16 * 1024, 1, 32, true};
    mem::CacheParams dcache{16 * 1024, 1, 32, false};

    /** Single-cycle access to any operand (the perfect data cache). */
    bool perfectData = false;

    // Fully pipelined functional-unit latencies by class.
    Cycle intAluLat = 1;
    Cycle intMulLat = 3;
    Cycle intDivLat = 12;
    Cycle fpAddLat = 2;
    Cycle fpMulLat = 4;
    Cycle fpDivLat = 12;

    // Functional-unit pool sizes (fully pipelined; issue of a class
    // is limited to its pool per cycle). 0 = unlimited. Defaults
    // model a generous 8-way machine: 8 simple ALUs, shared
    // mul/div, 4 FP units, 4 cache ports.
    unsigned intAluUnits = 8;
    unsigned intMulUnits = 2;
    unsigned fpUnits = 4;
    unsigned memPorts = 4;

    /** Maximum outstanding line fills (DCUB/MSHR entries with a
     *  pending or in-flight fetch). 0 = unlimited — the paper's
     *  "arbitrarily high number of outstanding requests". */
    unsigned maxOutstandingFills = 0;

    // Address translation (the paper implements a single-level page
    // table locked low in memory; we model its timing as TLBs whose
    // misses walk that table in local memory). 0 entries = no
    // translation modelling.
    unsigned dtlbEntries = 64;
    unsigned itlbEntries = 32;
    Cycle tlbWalkCycles = 12; ///< one local bank access + transfer

    Cycle opLatency(isa::OpClass cls) const;

    /** FU pool index for @p cls (see OoOCore::FuPool). */
    static unsigned fuPool(isa::OpClass cls);
};

/** Event counters exported by one core. */
struct CoreStats
{
    std::uint64_t committed = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadIssueMisses = 0;   ///< created a DCUB fetch
    std::uint64_t loadIssueHits = 0;     ///< tags, DCUB, or forward
    std::uint64_t forwardedLoads = 0;
    std::uint64_t canonicalLoadMisses = 0;
    std::uint64_t falseHits = 0;         ///< issue hit, canonical miss
    std::uint64_t falseMisses = 0;       ///< issue miss, canonical hit
    std::uint64_t unclaimedRepairs = 0;  ///< reparative events raised
    std::uint64_t storeCommitMisses = 0;
    std::uint64_t dirtyWriteBacks = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t memOrderStallEvents = 0;
    std::uint64_t fuStallEvents = 0;
    std::uint64_t mshrStallEvents = 0;
    std::uint64_t maxDcubOccupancy = 0;
};

/**
 * One out-of-order processor consuming the shared oracle stream and
 * talking to a node-specific memory backend.
 */
class OoOCore
{
  public:
    OoOCore(const CoreParams &params, OracleStream &stream,
            MemBackend &backend);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True once the final instruction has committed. */
    bool done() const { return done_; }

    /** Next sequence number to commit (== instructions committed). */
    InstSeq committedSeq() const { return nextCommitSeq_; }

    /**
     * A deferred line fill (broadcast) arrived; data usable at
     * @p ready_at. Must correspond to a pending DCUB entry.
     */
    void fillArrived(Addr line, Cycle ready_at, Cycle now);

    /** True when a pending (unfilled) DCUB entry exists for @p line. */
    bool hasPendingFill(Addr line) const;

    const CoreStats &coreStats() const { return stats_; }
    const mem::Cache &dcache() const { return dcache_; }

    /** Number of in-flight instructions (RUU occupancy). */
    std::size_t windowSize() const { return window_.size(); }

  private:
    /** An in-flight instruction (one RUU entry). */
    struct Uop
    {
        InstSeq seq = 0;
        isa::Instruction inst;
        isa::OpClass cls = isa::OpClass::Misc;
        Addr effAddr = invalidAddr;
        unsigned memSize = 0;
        Addr lineAddr = invalidAddr;
        bool isLoad = false;
        bool isStore = false;

        unsigned waitCount = 0;       ///< outstanding register producers
        std::vector<InstSeq> consumers;
        bool issued = false;
        bool completed = false;
        Cycle readyAt = cycleMax;

        bool issueHit = false;        ///< load issue-time outcome
        bool usesDcub = false;        ///< holds a DCUB user reference
        bool waitingFill = false;     ///< blocked on a deferred fill
    };

    /** One in-flight line in the Data Commit Update Buffer. */
    struct DcubEntry
    {
        bool pending = true;          ///< fill not yet arrived
        Cycle readyAt = cycleMax;
        bool claimed = false;         ///< matched to a canonical miss
        unsigned users = 0;           ///< LSQ references outstanding
        std::vector<InstSeq> waiters; ///< loads blocked on the fill
    };

    Uop &uop(InstSeq seq);
    const Uop &uop(InstSeq seq) const;
    bool inWindow(InstSeq seq) const;

    void processCompletions(Cycle now);
    void doCommit(Cycle now);
    void doIssue(Cycle now);
    void doFetch(Cycle now);

    void scheduleCompletion(InstSeq seq, Cycle when);
    void complete(InstSeq seq, Cycle now);
    void issueLoad(Uop &u, Cycle now);
    void commitLoad(Uop &u, Cycle now);
    void commitStore(Uop &u, Cycle now);
    void releaseDcubUser(Addr line);

    /** @return blocking store seq, or -1 when the load may proceed. */
    bool loadBlockedByStore(const Uop &u) const;
    /** Youngest older overlapping store, or nullptr. */
    const Uop *forwardingStore(const Uop &u) const;

    CoreParams params_;
    OracleStream &stream_;
    MemBackend &backend_;

    /** TLB as a one-set LRU cache over page-sized "lines".
     *  @return extra walk cycles (0 on a hit or when disabled). */
    Cycle tlbPenalty(mem::Cache *tlb, Addr addr,
                     std::uint64_t &miss_stat);

    mem::Cache icache_;
    mem::Cache dcache_;
    std::unique_ptr<mem::Cache> dtlb_;
    std::unique_ptr<mem::Cache> itlb_;

    std::deque<Uop> window_;
    InstSeq windowBase_ = 0;     ///< seq of window_.front()
    InstSeq nextFetchSeq_ = 0;
    InstSeq nextCommitSeq_ = 0;
    std::size_t lsqOccupancy_ = 0;
    bool fetchEnded_ = false;
    bool done_ = false;

    InstSeq lastWriter_[32];     ///< seq + 1, 0 = none
    std::set<InstSeq> readySet_;
    std::set<InstSeq> unknownAddrStores_;
    std::deque<InstSeq> windowStores_;
    std::map<Cycle, std::vector<InstSeq>> completionEvents_;

    std::map<Addr, DcubEntry> dcub_;

    Cycle fetchStallUntil_ = 0;
    Addr lastFetchLine_ = invalidAddr;

    CoreStats stats_;
};

} // namespace ooo
} // namespace dscalar

#endif // DSCALAR_OOO_CORE_HH
