/**
 * @file
 * Out-of-order core in the paper's configuration (Section 4.2):
 * 8-way issue, a 256-entry Register Update Unit tracking
 * dependencies, a load/store queue of half the RUU size, loads sent
 * to the cache at issue time, stores at commit time, single-cycle
 * store-to-load forwarding, perfect branch prediction, non-blocking
 * split L1 caches with an arbitrary number of outstanding misses.
 *
 * The data cache's tag state is only updated at instruction commit,
 * through a Data Commit Update Buffer (DCUB). Each load records its
 * issue-time hit/miss outcome; at commit the canonical in-order
 * outcome is recomputed and disparities (false hits / false misses)
 * are detected and repaired exactly as Section 4.1 describes. The
 * commit-updated tag array is therefore identical at every node of a
 * DataScalar system — the cache correspondence invariant.
 */

#ifndef DSCALAR_OOO_CORE_HH
#define DSCALAR_OOO_CORE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"

namespace dscalar {
namespace ooo {

/** Microarchitectural parameters (defaults = the paper's). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned ruuEntries = 256;
    unsigned lsqEntries = 128;
    Cycle l1Latency = 1;

    mem::CacheParams icache{16 * 1024, 1, 32, true};
    mem::CacheParams dcache{16 * 1024, 1, 32, false};

    /** Single-cycle access to any operand (the perfect data cache). */
    bool perfectData = false;

    // Fully pipelined functional-unit latencies by class.
    Cycle intAluLat = 1;
    Cycle intMulLat = 3;
    Cycle intDivLat = 12;
    Cycle fpAddLat = 2;
    Cycle fpMulLat = 4;
    Cycle fpDivLat = 12;

    // Functional-unit pool sizes (fully pipelined; issue of a class
    // is limited to its pool per cycle). 0 = unlimited. Defaults
    // model a generous 8-way machine: 8 simple ALUs, shared
    // mul/div, 4 FP units, 4 cache ports.
    unsigned intAluUnits = 8;
    unsigned intMulUnits = 2;
    unsigned fpUnits = 4;
    unsigned memPorts = 4;

    /** Maximum outstanding line fills (DCUB/MSHR entries with a
     *  pending or in-flight fetch). 0 = unlimited — the paper's
     *  "arbitrarily high number of outstanding requests". */
    unsigned maxOutstandingFills = 0;

    // Address translation (the paper implements a single-level page
    // table locked low in memory; we model its timing as TLBs whose
    // misses walk that table in local memory). 0 entries = no
    // translation modelling.
    unsigned dtlbEntries = 64;
    unsigned itlbEntries = 32;
    Cycle tlbWalkCycles = 12; ///< one local bank access + transfer

    Cycle opLatency(isa::OpClass cls) const;

    /** FU pool index for @p cls (see OoOCore::FuPool). */
    static unsigned fuPool(isa::OpClass cls);
};

/** Event counters exported by one core. */
struct CoreStats
{
    std::uint64_t committed = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadIssueMisses = 0;   ///< created a DCUB fetch
    std::uint64_t loadIssueHits = 0;     ///< tags, DCUB, or forward
    std::uint64_t forwardedLoads = 0;
    std::uint64_t canonicalLoadMisses = 0;
    std::uint64_t falseHits = 0;         ///< issue hit, canonical miss
    std::uint64_t falseMisses = 0;       ///< issue miss, canonical hit
    std::uint64_t unclaimedRepairs = 0;  ///< reparative events raised
    std::uint64_t storeCommitMisses = 0;
    std::uint64_t dirtyWriteBacks = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t memOrderStallEvents = 0;
    std::uint64_t fuStallEvents = 0;
    std::uint64_t mshrStallEvents = 0;
    std::uint64_t backendStallEvents = 0; ///< backend flow control
    std::uint64_t maxDcubOccupancy = 0;
};

/**
 * One out-of-order processor consuming the shared oracle stream and
 * talking to a node-specific memory backend.
 */
class OoOCore
{
  public:
    OoOCore(const CoreParams &params, OracleStream &stream,
            MemBackend &backend);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle after @p now at which tick() could change any
     * state (commit, issue, completion, or fetch), assuming no
     * external event intervenes. Returns cycleMax when the core is
     * done or can only be unblocked by an external delivery
     * (fillArrived). Must be queried after tick(now); ticking the
     * core at intermediate cycles is a no-op, which is what lets the
     * run loops fast-forward without changing cycle counts.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** True once the final instruction has committed. */
    bool done() const { return done_; }

    /** Next sequence number to commit (== instructions committed). */
    InstSeq committedSeq() const { return nextCommitSeq_; }

    /** Next sequence number to fetch; with CoreParams::fetchWidth it
     *  bounds the stream probes one tick can make (the parallel run
     *  loop pre-extends the OracleStream past that bound so worker
     *  threads only ever hit its read-only path). */
    InstSeq fetchSeq() const { return nextFetchSeq_; }

    /**
     * A deferred line fill (broadcast) arrived; data usable at
     * @p ready_at. Must correspond to a pending DCUB entry.
     */
    void fillArrived(Addr line, Cycle ready_at, Cycle now);

    /** True when a pending (unfilled) DCUB entry exists for @p line. */
    bool hasPendingFill(Addr line) const;

    const CoreStats &coreStats() const { return stats_; }
    const mem::Cache &dcache() const { return dcache_; }

    /** Emit commit-time disparity events (FalseHit/FalseMiss) for
     *  node @p node to @p sink; nullptr disables. */
    void
    setTraceSink(TraceSink *sink, NodeId node)
    {
        traceSink_ = sink;
        traceNode_ = node;
    }

    /** Number of in-flight instructions (RUU occupancy). */
    std::size_t windowSize() const { return window_.size(); }

    /** In-flight DCUB lines (pending or unreleased fills); feeds the
     *  obs::Sampler dcub_depth timeline. */
    std::size_t dcubOccupancy() const { return dcub_.size(); }

  private:
    /** An in-flight instruction (one RUU entry). */
    struct Uop
    {
        InstSeq seq = 0;
        isa::Instruction inst;
        isa::OpClass cls = isa::OpClass::Misc;
        Addr effAddr = invalidAddr;
        unsigned memSize = 0;
        Addr lineAddr = invalidAddr;
        bool isLoad = false;
        bool isStore = false;

        unsigned waitCount = 0;       ///< outstanding register producers
        std::vector<InstSeq> consumers;
        bool issued = false;
        bool completed = false;
        Cycle readyAt = cycleMax;

        bool issueHit = false;        ///< load issue-time outcome
        bool usesDcub = false;        ///< holds a DCUB user reference
        bool waitingFill = false;     ///< blocked on a deferred fill
    };

    /** One in-flight line in the Data Commit Update Buffer. */
    struct DcubEntry
    {
        bool pending = true;          ///< fill not yet arrived
        Cycle readyAt = cycleMax;
        bool claimed = false;         ///< matched to a canonical miss
        unsigned users = 0;           ///< LSQ references outstanding
        std::vector<InstSeq> waiters; ///< loads blocked on the fill
    };

    Uop &
    uop(InstSeq seq)
    {
        panic_if(!inWindow(seq), "uop %llu not in window",
                 (unsigned long long)seq);
        return window_[seq - windowBase_];
    }
    const Uop &
    uop(InstSeq seq) const
    {
        return const_cast<OoOCore *>(this)->uop(seq);
    }
    bool
    inWindow(InstSeq seq) const
    {
        return seq >= windowBase_ &&
               seq < windowBase_ + window_.size();
    }

    void processCompletions(Cycle now);
    void doCommit(Cycle now);
    void doIssue(Cycle now);
    void doFetch(Cycle now);

    void scheduleCompletion(InstSeq seq, Cycle when);
    void complete(InstSeq seq, Cycle now);
    void issueLoad(Uop &u, Cycle now);
    void commitLoad(Uop &u, Cycle now);
    void commitStore(Uop &u, Cycle now);
    void releaseDcubUser(Addr line);

    /** @return blocking store seq, or -1 when the load may proceed. */
    bool loadBlockedByStore(const Uop &u) const;
    /** Load would start a new fill but all MSHR entries are taken. */
    bool mshrStalled(const Uop &u) const;
    /** Load would start a new fill but the backend refuses (hard
     *  BSHR flow control); oldest instruction bypasses. */
    bool backendStalled(const Uop &u) const;
    /** Youngest older overlapping store, or nullptr. */
    const Uop *forwardingStore(const Uop &u) const;

    CoreParams params_;
    OracleStream &stream_;
    MemBackend &backend_;
    /** Cached backend_.fetchesMayStall(): keeps the default-config
     *  issue path free of backend flow-control probes. */
    bool backendMayStall_ = false;
    TraceSink *traceSink_ = nullptr;
    NodeId traceNode_ = 0;

    /** TLB as a one-set LRU cache over page-sized "lines".
     *  @return extra walk cycles (0 on a hit or when disabled). */
    Cycle tlbPenalty(mem::Cache *tlb, Addr addr,
                     std::uint64_t &miss_stat);

    mem::Cache icache_;
    mem::Cache dcache_;
    std::unique_ptr<mem::Cache> dtlb_;
    std::unique_ptr<mem::Cache> itlb_;

    std::deque<Uop> window_;
    InstSeq windowBase_ = 0;     ///< seq of window_.front()
    InstSeq nextFetchSeq_ = 0;
    InstSeq nextCommitSeq_ = 0;
    std::size_t lsqOccupancy_ = 0;
    bool fetchEnded_ = false;
    bool done_ = false;

    InstSeq lastWriter_[32];     ///< seq + 1, 0 = none
    /** Ready (waitCount == 0, not yet issued) uops in ascending seq.
     *  A sorted vector instead of a std::set: iteration order is
     *  identical, but insertion is a cheap memmove (usually a
     *  push_back, since dispatch makes the youngest uop ready) and
     *  the capacity is reused — the per-uop rb-tree node churn
     *  dominated the tick profile. */
    std::vector<InstSeq> readyList_;
    void
    insertReady(InstSeq seq)
    {
        readyList_.insert(std::upper_bound(readyList_.begin(),
                                           readyList_.end(), seq),
                          seq);
    }
    /** In-window stores not yet issued (address unknown), ascending
     *  seq; vector because inserts are always at the back. */
    std::vector<InstSeq> unknownAddrStores_;
    std::deque<InstSeq> windowStores_;
    /** Scheduled completions as a min-heap on (cycle, FIFO order) —
     *  pops in exactly the order the former map-of-vectors yielded. */
    struct CompletionEvent
    {
        Cycle when;
        std::uint64_t order;
        InstSeq seq;
    };
    struct CompletionLater
    {
        bool
        operator()(const CompletionEvent &a,
                   const CompletionEvent &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.order > b.order;
        }
    };
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        CompletionLater>
        completionEvents_;
    std::uint64_t completionOrder_ = 0;

    std::map<Addr, DcubEntry> dcub_;

    Cycle fetchStallUntil_ = 0;
    /** Whether the latest tick() completed, committed, issued, or
     *  dispatched anything — nextEventCycle's O(1) busy-core path. */
    bool tickProgressed_ = false;
    Addr lastFetchLine_ = invalidAddr;

    CoreStats stats_;
};

} // namespace ooo
} // namespace dscalar

#endif // DSCALAR_OOO_CORE_HH
