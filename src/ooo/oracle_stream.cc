#include "ooo/oracle_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace ooo {

OracleStream::OracleStream(
    std::shared_ptr<const func::InstTrace> trace, InstSeq max_insts)
    : replay_(true)
{
    panic_if(!trace, "replay stream needs a trace");
    // A budget-truncated capture only stands in for a live run whose
    // budget it covers; replaying it further would silently simulate
    // fewer instructions than the live run and skew every number.
    panic_if(!trace->programHalted() &&
                 (max_insts == 0 || max_insts > trace->length()),
             "trace of %llu records (program not halted) cannot "
             "cover a max_insts=%llu run",
             (unsigned long long)trace->length(),
             (unsigned long long)max_insts);
    maxInsts_ = max_insts;
    replayEnd_ = max_insts ? std::min(trace->length(), max_insts)
                           : trace->length();
    // The stream ends in a program halt (rather than an instruction
    // budget) only when the whole captured run is replayed and the
    // capture itself ran to completion.
    replayHalts_ =
        replayEnd_ == trace->length() && trace->programHalted();
    traceChunks_.reserve(trace->numChunks());
    for (std::size_t i = 0; i < trace->numChunks(); ++i)
        traceChunks_.push_back(trace->chunk(i));
    // The trace itself is not retained: once every consumer trims
    // past a chunk (and any cache lets the trace go), its memory is
    // freed even while later chunks are still being replayed.
}

std::vector<func::DynInst> &
OracleStream::newChunk(std::size_t records)
{
    chunks_.emplace_back();
    chunks_.back().reserve(records);
    return chunks_.back();
}

bool
OracleStream::extend(InstSeq seq)
{
    panic_if(seq < chunkStart_,
             "stream record %llu already trimmed (chunk base %llu)",
             (unsigned long long)seq,
             (unsigned long long)chunkStart_);

    if (replay_) {
        while (!ended_ && seq >= limit_) {
            if (limit_ >= replayEnd_) {
                // Budget truncation (or a fully consumed trace) is
                // only discovered by probing past the end, exactly
                // like the live backend.
                ended_ = true;
                end_ = replayEnd_;
                break;
            }
            std::size_t ci =
                static_cast<std::size_t>(limit_ >> kChunkShift);
            InstSeq chunk_end = std::min(
                replayEnd_, (static_cast<InstSeq>(ci) + 1)
                                << kChunkShift);
            std::size_t n =
                static_cast<std::size_t>(chunk_end - limit_);
            const func::InstTrace::Chunk &src = *traceChunks_[ci];
            std::vector<func::DynInst> &dst = newChunk(n);
            for (std::size_t i = 0; i < n; ++i) {
                dst.emplace_back();
                src.expand(i, limit_ + i, dst.back());
            }
            limit_ = chunk_end;
            if (limit_ == replayEnd_ && replayHalts_) {
                // The halt record is buffered: the end is known, as
                // it would be once a live FuncSim retires HALT.
                ended_ = true;
                end_ = replayEnd_;
            }
        }
        return seq < limit_;
    }

    while (!ended_ && seq >= limit_) {
        if (maxInsts_ != 0 && limit_ >= maxInsts_) {
            ended_ = true;
            end_ = maxInsts_;
            break;
        }
        func::DynInst rec;
        if (!sim_->step(&rec)) {
            ended_ = true;
            end_ = limit_;
            break;
        }
        if (chunks_.empty() ||
            chunks_.back().size() == kChunkRecords)
            newChunk(static_cast<std::size_t>(kChunkRecords));
        chunks_.back().push_back(rec);
        ++limit_;
        if (sim_->halted()) {
            ended_ = true;
            end_ = limit_;
        }
    }
    return seq < limit_;
}

void
OracleStream::trim(InstSeq min_seq)
{
    // Whole chunks only; the partial tail chunk (live append target)
    // always stays.
    while (!chunks_.empty() &&
           chunks_.front().size() == kChunkRecords &&
           chunkStart_ + kChunkRecords <= min_seq) {
        chunks_.pop_front();
        if (replay_) {
            std::size_t ci = static_cast<std::size_t>(
                chunkStart_ >> kChunkShift);
            if (ci < traceChunks_.size())
                traceChunks_[ci].reset();
        }
        chunkStart_ += kChunkRecords;
    }
}

} // namespace ooo
} // namespace dscalar
