#include "ooo/oracle_stream.hh"

#include "common/logging.hh"

namespace dscalar {
namespace ooo {

bool
OracleStream::extend(InstSeq seq)
{
    panic_if(seq < base_, "stream record %llu already trimmed (base %llu)",
             (unsigned long long)seq, (unsigned long long)base_);
    while (!ended_ && seq >= base_ + buffer_.size()) {
        if (maxInsts_ != 0 && base_ + buffer_.size() >= maxInsts_) {
            ended_ = true;
            end_ = maxInsts_;
            break;
        }
        func::DynInst rec;
        if (!sim_.step(&rec)) {
            ended_ = true;
            end_ = base_ + buffer_.size();
            break;
        }
        buffer_.push_back(rec);
        if (sim_.halted()) {
            ended_ = true;
            end_ = base_ + buffer_.size();
        }
    }
    return seq < base_ + buffer_.size();
}

void
OracleStream::trim(InstSeq min_seq)
{
    while (base_ < min_seq && !buffer_.empty()) {
        buffer_.pop_front();
        ++base_;
    }
}

} // namespace ooo
} // namespace dscalar
