/**
 * @file
 * Interface between an out-of-order core and its node's memory
 * system. The DataScalar node, the traditional memory hierarchy, and
 * the perfect-cache model all implement this.
 */

#ifndef DSCALAR_OOO_MEM_BACKEND_HH
#define DSCALAR_OOO_MEM_BACKEND_HH

#include "common/types.hh"

namespace dscalar {
namespace ooo {

/** Result of starting a line fetch at load-issue time. */
struct FillResult
{
    /**
     * Cycle at which the line is available to the core, or cycleMax
     * when the completion will be signalled later through
     * OoOCore::fillArrived() (e.g.\ a BSHR wait for a broadcast).
     */
    Cycle readyAt = cycleMax;
    /** Data was already waiting locally (e.g.\ buffered in the BSHR). */
    bool foundWaiting = false;
};

/** Node-side memory system as seen by the core. */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * A demand load missed the (commit-updated) L1D and the DCUB at
     * issue time; fetch line @p line. DataScalar owners access local
     * memory and broadcast; non-owners wait on (or match) a
     * broadcast; the traditional system issues a request/response
     * pair when the line maps off-chip.
     */
    virtual FillResult startLineFetch(Addr line, Cycle now) = 0;

    /**
     * At commit, a canonical (program-order) miss found no unclaimed
     * in-flight fetch for @p line: this node never fetched the line
     * this episode (a pure false hit). DataScalar owners must emit a
     * reparative broadcast; non-owners squash the matching broadcast.
     */
    virtual void onUnclaimedCanonicalMiss(Addr line, Cycle now) = 0;

    /**
     * A dirty victim line was evicted by a canonical fill at commit.
     * DataScalar completes it locally or drops it; the traditional
     * system may cross the global bus.
     */
    virtual void writeBack(Addr line, Cycle now) = 0;

    /** A committed store wrote through/into memory state for
     *  accounting purposes (write-noallocate miss path). */
    virtual void storeMiss(Addr line, Cycle now) = 0;

    /**
     * Fetch an instruction line (program text). Always local in a
     * DataScalar machine (text is replicated).
     * @return completion cycle.
     */
    virtual Cycle fetchInstLine(Addr line, Cycle now) = 0;

    /**
     * Backend flow control: may a new fetch of @p line start now?
     * False stalls the load at issue (retried every cycle); the core
     * exempts the oldest instruction so progress is never lost. Only
     * consulted when fetchesMayStall() is true.
     */
    virtual bool canAcceptFetch(Addr line) const
    {
        (void)line;
        return true;
    }

    /** True when canAcceptFetch can ever return false (lets the core
     *  skip the check entirely on its hot issue path). */
    virtual bool fetchesMayStall() const { return false; }
};

} // namespace ooo
} // namespace dscalar

#endif // DSCALAR_OOO_MEM_BACKEND_HH
