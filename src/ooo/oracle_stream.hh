/**
 * @file
 * Shared dynamic-instruction stream.
 *
 * One functional simulator produces the true dynamic stream; every
 * node's out-of-order core consumes it through a cursor. This models
 * two things at once: the perfect branch prediction the paper assumes
 * (Section 4.2), and the SPSD property that all DataScalar nodes
 * execute the identical instruction stream.
 */

#ifndef DSCALAR_OOO_ORACLE_STREAM_HH
#define DSCALAR_OOO_ORACLE_STREAM_HH

#include <deque>

#include "common/logging.hh"
#include "func/func_sim.hh"

namespace dscalar {
namespace ooo {

/** Lazily extended, reference-counted window over the dynamic stream. */
class OracleStream
{
  public:
    /**
     * @param sim functional oracle producing the stream.
     * @param max_insts truncate the stream after this many dynamic
     *        instructions (0 = run the program to completion). The
     *        paper runs "100 million instructions or to completion,
     *        whichever came first".
     */
    explicit OracleStream(func::FuncSim &sim, InstSeq max_insts = 0)
        : sim_(sim), maxInsts_(max_insts)
    {
    }

    /**
     * @return true when instruction @p seq exists (extending the
     * stream as needed); false once the program ends earlier.
     */
    bool
    available(InstSeq seq)
    {
        // Hot path: the record is already buffered (the cores poll
        // this every tick for every fetch/issue candidate).
        if (seq >= base_ && seq - base_ < buffer_.size())
            return true;
        return extend(seq);
    }

    /** The record for @p seq; available(seq) must have returned true. */
    const func::DynInst &
    get(InstSeq seq)
    {
        panic_if(!available(seq), "stream record %llu unavailable",
                 (unsigned long long)seq);
        return buffer_[seq - base_];
    }

    /** Drop records below @p min_seq (all consumers are past them). */
    void trim(InstSeq min_seq);

    /** True once the program has halted inside the stream. */
    bool ended() const { return ended_; }

    /** One past the last instruction; valid only when ended(). */
    InstSeq endSeq() const { return end_; }

    std::size_t bufferedCount() const { return buffer_.size(); }

  private:
    /** Slow path of available(): run the functional oracle forward
     *  until @p seq is buffered or the program ends. */
    bool extend(InstSeq seq);

    func::FuncSim &sim_;
    InstSeq maxInsts_ = 0;
    std::deque<func::DynInst> buffer_;
    InstSeq base_ = 0;
    bool ended_ = false;
    InstSeq end_ = 0;
};

} // namespace ooo
} // namespace dscalar

#endif // DSCALAR_OOO_ORACLE_STREAM_HH
