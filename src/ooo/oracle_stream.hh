/**
 * @file
 * Shared dynamic-instruction stream.
 *
 * One oracle produces the true dynamic stream; every node's
 * out-of-order core consumes it through a cursor. This models two
 * things at once: the perfect branch prediction the paper assumes
 * (Section 4.2), and the SPSD property that all DataScalar nodes
 * execute the identical instruction stream.
 *
 * Two backends produce the records:
 *  - live: a func::FuncSim executes the program as consumers extend
 *    the window (capture and single-shot runs);
 *  - replay: a previously captured func::InstTrace is expanded
 *    chunk-by-chunk, so a sweep re-running the same workload never
 *    re-executes it functionally (see driver::TraceCache).
 *
 * Buffered records live in fixed-size chunks; trim() releases whole
 * chunks once every consumer is past them, and in replay mode also
 * drops the per-chunk reference into the shared trace so its memory
 * can go as soon as all other holders are done with it.
 */

#ifndef DSCALAR_OOO_ORACLE_STREAM_HH
#define DSCALAR_OOO_ORACLE_STREAM_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "func/func_sim.hh"
#include "func/inst_trace.hh"

namespace dscalar {
namespace ooo {

/** Lazily extended, chunk-refcounted window over the dynamic stream. */
class OracleStream
{
  public:
    /** Buffered records per chunk; matches the trace chunking so a
     *  replay chunk expands from exactly one trace chunk. */
    static constexpr unsigned kChunkShift = func::InstTrace::kChunkShift;
    static constexpr InstSeq kChunkRecords = func::InstTrace::kChunkRecords;
    static constexpr InstSeq kChunkMask = func::InstTrace::kChunkMask;

    /**
     * Live backend: @p sim executes the program on demand.
     * @param max_insts truncate the stream after this many dynamic
     *        instructions (0 = run the program to completion). The
     *        paper runs "100 million instructions or to completion,
     *        whichever came first".
     */
    explicit OracleStream(func::FuncSim &sim, InstSeq max_insts = 0)
        : sim_(&sim), maxInsts_(max_insts)
    {
    }

    /** Replay backend: expand records from a captured trace instead
     *  of executing; @p max_insts further truncates the trace. */
    explicit OracleStream(
        std::shared_ptr<const func::InstTrace> trace,
        InstSeq max_insts = 0);

    /**
     * @return true when instruction @p seq exists (extending the
     * stream as needed); false once the program ends earlier.
     */
    bool
    available(InstSeq seq)
    {
        // Hot path: the record is already buffered (the cores poll
        // this every tick for every fetch/issue candidate).
        if (seq >= chunkStart_ && seq < limit_)
            return true;
        return extend(seq);
    }

    /** The record for @p seq; available(seq) must have returned
     *  true. Bounds are asserted only in debug builds — this is the
     *  cores' per-fetch hot path. */
    const func::DynInst &
    get(InstSeq seq) const
    {
#ifndef NDEBUG
        panic_if(seq < chunkStart_ || seq >= limit_,
                 "stream record %llu not buffered (chunk base %llu, "
                 "limit %llu)",
                 (unsigned long long)seq,
                 (unsigned long long)chunkStart_,
                 (unsigned long long)limit_);
#endif
        InstSeq off = seq - chunkStart_;
        return chunks_[off >> kChunkShift][off & kChunkMask];
    }

    /** Release records below @p min_seq (all consumers are past
     *  them). Whole chunks only: records in the chunk containing
     *  @p min_seq stay buffered. */
    void trim(InstSeq min_seq);

    /** True once the program end has been discovered inside the
     *  stream (an available() probe reached it). */
    bool ended() const { return ended_; }

    /** One past the last instruction; valid only when ended(). */
    InstSeq endSeq() const { return end_; }

    /** Records currently buffered (chunk-granular after trim). */
    std::size_t
    bufferedCount() const
    {
        return static_cast<std::size_t>(limit_ - chunkStart_);
    }

    /** Replay streams never touch a FuncSim. */
    bool replaying() const { return replay_; }

  private:
    /** Slow path of available(): produce records (live execution or
     *  trace expansion) until @p seq is buffered or the stream
     *  ends. */
    bool extend(InstSeq seq);

    /** Append an empty chunk sized for @p records entries. */
    std::vector<func::DynInst> &newChunk(std::size_t records);

    func::FuncSim *sim_ = nullptr;
    bool replay_ = false;
    /** Per-chunk references into the trace (the stream does not pin
     *  the whole InstTrace), dropped as trim() passes each chunk —
     *  the refcounted chunk release that lets a shared trace's
     *  memory go progressively as every consumer advances. */
    std::vector<std::shared_ptr<const func::InstTrace::Chunk>>
        traceChunks_;
    InstSeq maxInsts_ = 0;
    InstSeq replayEnd_ = 0;     ///< trace records to replay
    bool replayHalts_ = false;  ///< trace end is a program halt

    /** Buffered records: chunks_[0] starts at chunkStart_ (always a
     *  chunk multiple); only the last chunk may be partial. */
    std::deque<std::vector<func::DynInst>> chunks_;
    InstSeq chunkStart_ = 0;
    InstSeq limit_ = 0; ///< one past the highest buffered record
    bool ended_ = false;
    InstSeq end_ = 0;
};

/** Backend-selection helpers shared by the timing systems: a null
 *  trace selects a live FuncSim oracle over @p program; a non-null
 *  trace selects replay (no functional execution at all). */
inline std::unique_ptr<func::FuncSim>
makeOracle(const prog::Program &program,
           const std::shared_ptr<const func::InstTrace> &trace)
{
    if (trace)
        return nullptr;
    return std::make_unique<func::FuncSim>(program);
}

inline OracleStream
makeStream(func::FuncSim *sim,
           std::shared_ptr<const func::InstTrace> trace,
           InstSeq max_insts)
{
    if (trace)
        return OracleStream(std::move(trace), max_insts);
    return OracleStream(*sim, max_insts);
}

} // namespace ooo
} // namespace dscalar

#endif // DSCALAR_OOO_ORACLE_STREAM_HH
