#include "core/datascalar.hh"

#include <algorithm>
#include <iostream>

#include "common/logging.hh"

namespace dscalar {
namespace core {

DataScalarSystem::DataScalarSystem(
    const prog::Program &program, const SimConfig &config,
    mem::PageTable ptable,
    std::shared_ptr<const func::InstTrace> trace)
    : config_(config), oracle_(ooo::makeOracle(program, trace)),
      replayOutput_(trace ? trace->outputPrefix(config.maxInsts)
                          : std::string()),
      stream_(ooo::makeStream(oracle_.get(), std::move(trace),
                              config.maxInsts)),
      ptable_(std::move(ptable)),
      bus_(config.bus), ring_(config.numNodes, config.ring),
      faults_(config.fault),
      recoveryActive_(config.rerequestTimeout > 0)
{
    fatal_if(config_.numNodes < 1, "need at least one node");
    fatal_if(config_.bshrHardCapacity && !recoveryActive_,
             "bshrHardCapacity drops broadcasts at a full bank and "
             "needs re-request recovery (set rerequestTimeout > 0)");
    bus_.setFaultModel(&faults_);
    ring_.setFaultModel(&faults_);
    fatal_if(ptable_.numNodes() != config_.numNodes,
             "page table built for %u nodes, system has %u",
             ptable_.numNodes(), config_.numNodes);
    for (NodeId id = 0; id < config_.numNodes; ++id) {
        nodes_.push_back(std::make_unique<DataScalarNode>(
            id, config_, ptable_, stream_, *this));
    }
    if (config_.memCapacityPages != 0) {
        for (NodeId id = 0; id < config_.numNodes; ++id) {
            fatal_if(localPageCount(id) > config_.memCapacityPages,
                     "node %u needs %zu pages of local memory but "
                     "has capacity for %zu (reduce replication or "
                     "add nodes)",
                     id, localPageCount(id),
                     config_.memCapacityPages);
        }
    }
}

void
DataScalarSystem::broadcast(NodeId src, Addr line,
                            interconnect::MsgKind kind, Cycle ready)
{
    // A single-node "system" has nobody to push operands to.
    if (config_.numNodes == 1)
        return;
    unsigned line_size = config_.core.dcache.lineSize;
    if (config_.interconnect == InterconnectKind::Ring) {
        interconnect::RingBroadcastResult res =
            ring_.broadcast(kind, line_size, src, line, ready);
        for (const interconnect::RingDelivery &d : res.deliveries) {
            deliveries_.push(Delivery{d.at, deliveryOrder_++, src,
                                      line, kind, true, d.node});
        }
        return;
    }
    interconnect::BusTransmitResult res =
        bus_.transmit(kind, line_size, src, line, ready);
    for (unsigned i = 0; i < res.numDeliveries; ++i) {
        deliveries_.push(
            Delivery{res.at[i], deliveryOrder_++, src, line, kind});
    }
}

std::size_t
DataScalarSystem::localPageCount(NodeId id) const
{
    std::size_t n = ptable_.ownedPageCount(id);
    n += ptable_.replicatedPageCount();
    return n;
}

RunResult
DataScalarSystem::run()
{
    panic_if(ran_, "DataScalarSystem::run called twice");
    ran_ = true;

    Cycle now = 0;
    Cycle last_progress_cycle = 0;
    InstSeq last_min_commit = 0;
    std::uint64_t loop_ticks = 0;
    const bool skipping = config_.eventDriven;
    // Per-node wake times: the earliest cycle each core's tick could
    // change any state (nextEventCycle contract). A core whose wake
    // lies in the future is provably idle, so its ticks are no-ops
    // and are elided entirely; an arriving delivery re-arms the
    // recipient for the current cycle. Single-stepping mode pins
    // every wake at "now" so every core ticks every cycle.
    std::vector<Cycle> wake(nodes_.size(), 0);

    while (true) {
        ++loop_ticks;
        while (!deliveries_.empty() && deliveries_.top().at <= now) {
            Delivery d = deliveries_.top();
            deliveries_.pop();
            bool rereq = d.kind == interconnect::MsgKind::Rerequest;
            if (d.targeted) {
                if (rereq)
                    nodes_[d.target]->deliverRerequest(d.line, now);
                else
                    nodes_[d.target]->deliverBroadcast(d.line, now);
                wake[d.target] = now;
            } else {
                for (auto &node : nodes_) {
                    if (node->id() != d.src) {
                        if (rereq)
                            node->deliverRerequest(d.line, now);
                        else
                            node->deliverBroadcast(d.line, now);
                        wake[node->id()] = now;
                    }
                }
            }
        }

        if (recoveryActive_) {
            for (auto &node : nodes_)
                node->checkRecovery(now);
        }

        bool all_done = true;
        InstSeq min_commit = ~static_cast<InstSeq>(0);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            ooo::OoOCore &core = nodes_[i]->core();
            if (!skipping || wake[i] <= now) {
                core.tick(now);
                wake[i] = skipping ? core.nextEventCycle(now)
                                   : now + 1;
            }
            all_done = all_done && core.done();
            min_commit = std::min(min_commit, core.committedSeq());
        }

        if (all_done && deliveries_.empty()) {
            // Final cycle's state is settled; flush pending samples.
            if (sampler_)
                sampler_->advance(now);
            break;
        }

        stream_.trim(min_commit);

        if (min_commit > last_min_commit) {
            last_min_commit = min_commit;
            last_progress_cycle = now;
        } else if (now - last_progress_cycle > config_.watchdogCycles) {
            watchdogDump(std::cerr, now);
            panic("no commit progress for %llu cycles "
                  "(min committed %llu @ cycle %llu; %zu deliveries "
                  "pending, next at %llu; all_done=%d) -- "
                  "protocol deadlock?",
                  (unsigned long long)config_.watchdogCycles,
                  (unsigned long long)min_commit,
                  (unsigned long long)now, deliveries_.size(),
                  deliveries_.empty()
                      ? 0ULL
                      : (unsigned long long)deliveries_.top().at,
                  all_done ? 1 : 0);
        }

        Cycle next = now + 1;
        if (skipping) {
            // Fast-forward to the earliest cycle anything can happen:
            // a node making internal progress or a broadcast landing.
            // Intermediate ticks are no-ops, so skipping them changes
            // no simulated cycle count or statistic.
            Cycle soonest = nextDeliveryCycle();
            for (Cycle w : wake)
                soonest = std::min(soonest, w);
            if (recoveryActive_) {
                // Re-requests must fire at the same cycle in both
                // run-loop modes.
                for (const auto &node : nodes_)
                    soonest =
                        std::min(soonest, node->nextRecoveryCycle());
            }
            // Never skip past the cycle where the watchdog would
            // fire: a deadlocked run must panic at the same cycle
            // the single-stepping loop panics at.
            Cycle deadline =
                last_progress_cycle + config_.watchdogCycles + 1;
            next = std::max(now + 1, std::min(soonest, deadline));
        }
        // Cycles [now, next-1] are final (skipped cycles are no-ops),
        // so any nominal sample cycle in that window observes exactly
        // the current state — identical in both run-loop modes.
        if (sampler_)
            sampler_->advance(next - 1);
        now = next;
    }

    RunResult result;
    result.cycles = now + 1;
    result.loopTicks = loop_ticks;
    result.instructions = stream_.endSeq();
    result.ipc = result.cycles
                     ? static_cast<double>(result.instructions) /
                           static_cast<double>(result.cycles)
                     : 0.0;
    lastResult_ = result;
    result.stats = snapshotStats();
    lastResult_.stats = result.stats;
    return result;
}

void
DataScalarSystem::setTraceSink(TraceSink *sink)
{
    tee_.clear();
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
DataScalarSystem::addTraceSink(TraceSink *sink)
{
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
DataScalarSystem::applyTraceSinks()
{
    TraceSink *eff = tee_.empty() ? nullptr : &tee_;
    for (auto &node : nodes_)
        node->setTraceSink(eff);
    faults_.setTraceSink(eff);
}

void
DataScalarSystem::setSampler(obs::Sampler *sampler)
{
    sampler_ = sampler;
    if (!sampler)
        return;
    for (const auto &node : nodes_) {
        const DataScalarNode *n = node.get();
        std::string prefix = "node" + std::to_string(n->id());
        sampler->addColumn(prefix + ".commit_rate",
                           obs::Sampler::Mode::Delta, [n] {
                               return static_cast<std::uint64_t>(
                                   n->core().committedSeq());
                           });
        sampler->addColumn(prefix + ".bshr_occupancy",
                           obs::Sampler::Mode::Level, [n] {
                               return static_cast<std::uint64_t>(
                                   n->bshr().occupancy());
                           });
        sampler->addColumn(prefix + ".dcub_depth",
                           obs::Sampler::Mode::Level, [n] {
                               return static_cast<std::uint64_t>(
                                   n->core().dcubOccupancy());
                           });
    }
    sampler->addColumn("bus_messages", obs::Sampler::Mode::Delta,
                       [this] { return bus_.totalMessages(); });
    sampler->addColumn("bus_busy_cycles", obs::Sampler::Mode::Delta,
                       [this] { return bus_.busyCycles(); });
    if (config_.interconnect == InterconnectKind::Ring) {
        sampler->addColumn("ring_link_busy_cycles",
                           obs::Sampler::Mode::Delta,
                           [this] { return ring_.linkBusyCycles(); });
    }
    // Datathread lead: the node with the highest committed sequence
    // this window (lowest id wins ties), i.e.\ the paper's notion of
    // which node currently leads the datathread.
    sampler->addColumn("lead_node", obs::Sampler::Mode::Level, [this] {
        NodeId lead = 0;
        InstSeq best = 0;
        for (const auto &node : nodes_) {
            InstSeq seq = node->core().committedSeq();
            if (seq > best) {
                best = seq;
                lead = node->id();
            }
        }
        return static_cast<std::uint64_t>(lead);
    });
}

void
DataScalarSystem::watchdogDump(std::ostream &os, Cycle now) const
{
    os << "==== watchdog diagnostics @ cycle " << now << " ====\n";
    for (const auto &node : nodes_)
        node->watchdogDump(os, now);
    os << "in-flight messages: " << deliveries_.size() << '\n';
    auto copy = deliveries_;
    while (!copy.empty()) {
        const Delivery &d = copy.top();
        os << "  " << interconnect::msgKindName(d.kind) << " 0x"
           << std::hex << d.line << std::dec << " from node " << d.src
           << ", delivers @" << d.at;
        if (d.targeted)
            os << " to node " << d.target;
        os << '\n';
        copy.pop();
    }
}

std::shared_ptr<const stats::Snapshot>
DataScalarSystem::snapshotStats() const
{
    auto snap = std::make_shared<stats::Snapshot>();
    stats::Snapshot::GroupEntry &sys = snap->addGroup(
        "system", "---- DataScalarSystem (" +
                      std::to_string(config_.numNodes) +
                      " nodes) ----");
    snap->addCounter(sys, "cycles", lastResult_.cycles,
                     "simulated cycles");
    snap->addCounter(sys, "instructions", lastResult_.instructions,
                     "committed per node (SPSD)");
    snap->addScalar(sys, "ipc", lastResult_.ipc,
                    "instructions per cycle");
    snap->addCounter(sys, "bus_messages", bus_.totalMessages(),
                     "global-bus transactions");
    snap->addCounter(sys, "bus_bytes", bus_.totalBytes(),
                     "global-bus payload+header bytes");
    snap->addCounter(sys, "bus_busy_cycles", bus_.busyCycles(),
                     "cycles the bus was occupied");
    if (config_.interconnect == InterconnectKind::Ring) {
        snap->addCounter(sys, "ring_messages", ring_.totalMessages(),
                         "ring broadcasts");
        snap->addCounter(sys, "ring_link_busy_cycles",
                         ring_.linkBusyCycles(),
                         "summed link occupancy");
    }
    if (faults_.enabled()) {
        const interconnect::FaultStats &fs = faults_.faultStats();
        snap->addCounter(sys, "fault_decisions", fs.decisions,
                         "transmissions considered");
        snap->addCounter(sys, "fault_drops", fs.drops,
                         "transmissions lost");
        snap->addCounter(sys, "fault_duplicates", fs.duplicates,
                         "transmissions duplicated");
        snap->addCounter(sys, "fault_delays", fs.delays,
                         "deliveries jittered");
        snap->addCounter(sys, "fault_delay_cycles", fs.delayCycles,
                         "summed injected jitter");
    }
    for (const auto &node : nodes_)
        node->buildStats(*snap);
    return snap;
}

void
DataScalarSystem::dumpStats(std::ostream &os) const
{
    snapshotStats()->dump(os);
}

bool
DataScalarSystem::protocolDrained() const
{
    if (!deliveries_.empty())
        return false;
    for (const auto &node : nodes_)
        if (!node->bshr().drained())
            return false;
    return true;
}

} // namespace core
} // namespace dscalar
