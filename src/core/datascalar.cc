#include "core/datascalar.hh"

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/parallel_tick.hh"

namespace dscalar {
namespace core {

/**
 * Per-run state of the conservative-window parallel loop.
 *
 * During the parallel phase of a window each node runs on a worker
 * thread and may only touch its own state; everything it would have
 * pushed into shared state — interconnect sends and trace events —
 * is buffered here per node, stamped with (cycle, phase, emission
 * seq). The barrier then replays all buffers sorted by
 * (cycle, phase, node, seq), which is exactly the order the serial
 * loop interleaves them in: per executed cycle, every node's
 * recovery scan in node order, then every node's tick in node order,
 * and within one node's visit, program order.
 */
struct DataScalarSystem::ParallelWindow
{
    enum : std::uint8_t { PhaseRecovery = 0, PhaseTick = 1 };

    struct Item
    {
        Cycle cycle = 0;        ///< node-local cycle of the call
        std::uint8_t phase = PhaseTick;
        NodeId node = 0;
        std::uint64_t seq = 0;  ///< per-node emission order
        bool isSend = false;
        ProtocolEvent event;    ///< valid when !isSend
        Addr line = invalidAddr;
        interconnect::MsgKind kind = interconnect::MsgKind::Broadcast;
        Cycle ready = 0;
    };

    /** One node's window-local execution state; doubles as the trace
     *  sink the node points at during the parallel phase. */
    struct NodeState final : public TraceSink
    {
        Cycle now = 0;
        std::uint8_t phase = PhaseTick;
        std::uint64_t seq = 0;
        std::vector<Item> items;
        /** Earliest cycle this core's tick can change state (the
         *  serial loop's wake[] slot). */
        Cycle wake = 0;
        Cycle doneCycle = 0;
        bool doneSeen = false;

        void
        event(const ProtocolEvent &ev) override
        {
            Item it;
            it.cycle = now;
            it.phase = phase;
            it.node = ev.node;
            it.seq = seq++;
            it.event = ev;
            items.push_back(it);
        }
    };

    explicit ParallelWindow(std::size_t num_nodes) : nodes(num_nodes)
    {
    }

    std::vector<NodeState> nodes;
};

DataScalarSystem::DataScalarSystem(
    const prog::Program &program, const SimConfig &config,
    mem::PageTable ptable,
    std::shared_ptr<const func::InstTrace> trace)
    : config_(config), oracle_(ooo::makeOracle(program, trace)),
      replayOutput_(trace ? trace->outputPrefix(config.maxInsts)
                          : std::string()),
      stream_(ooo::makeStream(oracle_.get(), std::move(trace),
                              config.maxInsts)),
      ptable_(std::move(ptable)),
      bus_(config.bus), ring_(config.numNodes, config.ring),
      faults_(config.fault),
      recoveryActive_(config.rerequestTimeout > 0)
{
    fatal_if(config_.numNodes < 1, "need at least one node");
    fatal_if(config_.bshrHardCapacity && !recoveryActive_,
             "bshrHardCapacity drops broadcasts at a full bank and "
             "needs re-request recovery (set rerequestTimeout > 0)");
    bus_.setFaultModel(&faults_);
    ring_.setFaultModel(&faults_);
    fatal_if(ptable_.numNodes() != config_.numNodes,
             "page table built for %u nodes, system has %u",
             ptable_.numNodes(), config_.numNodes);
    for (NodeId id = 0; id < config_.numNodes; ++id) {
        nodes_.push_back(std::make_unique<DataScalarNode>(
            id, config_, ptable_, stream_, *this));
    }
    if (config_.memCapacityPages != 0) {
        for (NodeId id = 0; id < config_.numNodes; ++id) {
            fatal_if(localPageCount(id) > config_.memCapacityPages,
                     "node %u needs %zu pages of local memory but "
                     "has capacity for %zu (reduce replication or "
                     "add nodes)",
                     id, localPageCount(id),
                     config_.memCapacityPages);
        }
    }
}

void
DataScalarSystem::broadcast(NodeId src, Addr line,
                            interconnect::MsgKind kind, Cycle ready)
{
    // A single-node "system" has nobody to push operands to.
    if (config_.numNodes == 1)
        return;
    if (pwin_) {
        // Parallel phase: nodes only ever broadcast as themselves,
        // so buffering by src is race-free. The barrier replays the
        // buffers through broadcastNow() in the serial loop's order.
        ParallelWindow::NodeState &st = pwin_->nodes[src];
        ParallelWindow::Item it;
        it.cycle = st.now;
        it.phase = st.phase;
        it.node = src;
        it.seq = st.seq++;
        it.isSend = true;
        it.line = line;
        it.kind = kind;
        it.ready = ready;
        st.items.push_back(it);
        return;
    }
    broadcastNow(src, line, kind, ready);
}

void
DataScalarSystem::broadcastNow(NodeId src, Addr line,
                               interconnect::MsgKind kind, Cycle ready)
{
    unsigned line_size = config_.core.dcache.lineSize;
    if (config_.interconnect == InterconnectKind::Ring) {
        interconnect::RingBroadcastResult res =
            ring_.broadcast(kind, line_size, src, line, ready);
        for (const interconnect::RingDelivery &d : res.deliveries) {
            deliveries_.push(Delivery{d.at, deliveryOrder_++, src,
                                      line, kind, true, d.node});
        }
        return;
    }
    interconnect::BusTransmitResult res =
        bus_.transmit(kind, line_size, src, line, ready);
    for (unsigned i = 0; i < res.numDeliveries; ++i) {
        deliveries_.push(
            Delivery{res.at[i], deliveryOrder_++, src, line, kind});
    }
}

std::size_t
DataScalarSystem::localPageCount(NodeId id) const
{
    std::size_t n = ptable_.ownedPageCount(id);
    n += ptable_.replicatedPageCount();
    return n;
}

RunResult
DataScalarSystem::run()
{
    panic_if(ran_, "DataScalarSystem::run called twice");
    ran_ = true;
    unsigned threads =
        resolveTickThreads(config_.tickThreads, config_.numNodes);
    if (threads > 1 && config_.numNodes > 1)
        return runParallel(threads);
    return runSerial();
}

RunResult
DataScalarSystem::runSerial()
{
    Cycle now = 0;
    Cycle last_progress_cycle = 0;
    InstSeq last_min_commit = 0;
    std::uint64_t loop_ticks = 0;
    const bool skipping = config_.eventDriven;
    // Per-node wake times: the earliest cycle each core's tick could
    // change any state (nextEventCycle contract). A core whose wake
    // lies in the future is provably idle, so its ticks are no-ops
    // and are elided entirely; an arriving delivery re-arms the
    // recipient for the current cycle. Single-stepping mode pins
    // every wake at "now" so every core ticks every cycle.
    std::vector<Cycle> wake(nodes_.size(), 0);

    // Wall-clock phase attribution (setProfiler): the lap pattern
    // reads the clock once per phase transition, so the four phases
    // partition the loop's wall time exactly.
    unsigned ph_delivery = 0, ph_recovery = 0, ph_tick = 0, ph_book = 0;
    if (prof_) {
        ph_delivery = prof_->addPhase("delivery");
        ph_recovery = prof_->addPhase("recovery");
        ph_tick = prof_->addPhase("tick");
        ph_book = prof_->addPhase("bookkeeping");
        profStartNs_ = prof_->elapsedNs();
        prof_->lapStart();
    }

    while (true) {
        ++loop_ticks;
        while (!deliveries_.empty() && deliveries_.top().at <= now) {
            Delivery d = deliveries_.top();
            deliveries_.pop();
            bool rereq = d.kind == interconnect::MsgKind::Rerequest;
            if (d.targeted) {
                if (rereq)
                    nodes_[d.target]->deliverRerequest(d.line, now);
                else
                    nodes_[d.target]->deliverBroadcast(d.line, now);
                wake[d.target] = now;
            } else {
                for (auto &node : nodes_) {
                    if (node->id() != d.src) {
                        if (rereq)
                            node->deliverRerequest(d.line, now);
                        else
                            node->deliverBroadcast(d.line, now);
                        wake[node->id()] = now;
                    }
                }
            }
        }

        if (prof_)
            prof_->lap(ph_delivery);

        if (recoveryActive_) {
            for (auto &node : nodes_)
                node->checkRecovery(now);
        }
        if (prof_)
            prof_->lap(ph_recovery);

        bool all_done = true;
        InstSeq min_commit = ~static_cast<InstSeq>(0);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            ooo::OoOCore &core = nodes_[i]->core();
            if (!skipping || wake[i] <= now) {
                core.tick(now);
                wake[i] = skipping ? core.nextEventCycle(now)
                                   : now + 1;
            }
            all_done = all_done && core.done();
            min_commit = std::min(min_commit, core.committedSeq());
        }
        if (prof_)
            prof_->lap(ph_tick);

        if (all_done && deliveries_.empty()) {
            // Final cycle's state is settled; flush pending samples.
            if (sampler_)
                sampler_->advance(now);
            if (prof_)
                prof_->lap(ph_book);
            break;
        }

        stream_.trim(min_commit);

        if (min_commit > last_min_commit) {
            last_min_commit = min_commit;
            last_progress_cycle = now;
        } else if (now - last_progress_cycle > config_.watchdogCycles) {
            watchdogDump(std::cerr, now);
            panic("no commit progress for %llu cycles "
                  "(min committed %llu @ cycle %llu; %zu deliveries "
                  "pending, next at %llu; all_done=%d) -- "
                  "protocol deadlock?",
                  (unsigned long long)config_.watchdogCycles,
                  (unsigned long long)min_commit,
                  (unsigned long long)now, deliveries_.size(),
                  deliveries_.empty()
                      ? 0ULL
                      : (unsigned long long)deliveries_.top().at,
                  all_done ? 1 : 0);
        }

        Cycle next = now + 1;
        if (skipping) {
            // Fast-forward to the earliest cycle anything can happen:
            // a node making internal progress or a broadcast landing.
            // Intermediate ticks are no-ops, so skipping them changes
            // no simulated cycle count or statistic.
            Cycle soonest = nextDeliveryCycle();
            for (Cycle w : wake)
                soonest = std::min(soonest, w);
            if (recoveryActive_) {
                // Re-requests must fire at the same cycle in both
                // run-loop modes.
                for (const auto &node : nodes_)
                    soonest =
                        std::min(soonest, node->nextRecoveryCycle());
            }
            // Never skip past the cycle where the watchdog would
            // fire: a deadlocked run must panic at the same cycle
            // the single-stepping loop panics at.
            Cycle deadline =
                last_progress_cycle + config_.watchdogCycles + 1;
            next = std::max(now + 1, std::min(soonest, deadline));
        }
        // Cycles [now, next-1] are final (skipped cycles are no-ops),
        // so any nominal sample cycle in that window observes exactly
        // the current state — identical in both run-loop modes.
        if (sampler_)
            sampler_->advance(next - 1);
        now = next;
        if (prof_)
            prof_->lap(ph_book);
    }

    return finishRun(now, loop_ticks);
}

RunResult
DataScalarSystem::finishRun(Cycle final_cycle,
                            std::uint64_t loop_ticks)
{
    // Stamp the loop's end before building the snapshot so the
    // profile group's total_us brackets exactly the instrumented
    // loop (its phases already sum to this by the lap pattern).
    if (prof_)
        profEndNs_ = prof_->elapsedNs();
    RunResult result;
    result.cycles = final_cycle + 1;
    result.loopTicks = loop_ticks;
    result.instructions = stream_.endSeq();
    result.ipc = result.cycles
                     ? static_cast<double>(result.instructions) /
                           static_cast<double>(result.cycles)
                     : 0.0;
    lastResult_ = result;
    result.stats = snapshotStats();
    lastResult_.stats = result.stats;
    return result;
}

RunResult
DataScalarSystem::runParallel(unsigned threads)
{
    // Lookahead: any send made at cycle c lands at >= c + min_lat,
    // so nodes ticking independently over [W, W + min_lat) cannot
    // miss a message from this window. Fatal when zero.
    const Cycle min_lat = minCrossNodeLatency(config_);
    const bool skipping = config_.eventDriven;
    const std::size_t n = nodes_.size();

    // Wall-clock phase attribution (setProfiler), lap pattern as in
    // runSerial; "setup" absorbs window/pool construction and
    // "barrier" the merge-replay, the two costs the serial loop does
    // not have (docs/PERF.md).
    unsigned ph_setup = 0, ph_delivery = 0, ph_oracle = 0, ph_tick = 0,
             ph_barrier = 0, ph_book = 0;
    if (prof_) {
        ph_setup = prof_->addPhase("setup");
        ph_delivery = prof_->addPhase("delivery");
        ph_oracle = prof_->addPhase("oracle_extend");
        ph_tick = prof_->addPhase("tick");
        ph_barrier = prof_->addPhase("barrier");
        ph_book = prof_->addPhase("bookkeeping");
        profStartNs_ = prof_->elapsedNs();
        prof_->lapStart();
    }

    ParallelWindow win(n);
    common::ThreadPool pool(threads);
    if (prof_)
        prof_->lap(ph_setup);

    Cycle window_start = 0;
    Cycle last_progress_cycle = 0;
    InstSeq last_min_commit = 0;
    std::uint64_t loop_ticks = 0; ///< windows executed
    std::vector<std::size_t> active;
    active.reserve(n);

    // The sink nodes use outside the parallel phase (serial delivery
    // processing and barrier replay go straight to the tee).
    TraceSink *direct = tee_.empty() ? nullptr : &tee_;

    while (true) {
        ++loop_ticks;
        const Cycle W = window_start;

        // ---- Window start (main thread, direct effects) ----------
        // Deliveries due at W, handled exactly like the serial loop:
        // fan-out order is heap-order x node-order (not sorted by
        // node), and an owner's deliverRerequest() transmits its
        // answer immediately — both reasons this stage must not run
        // under the buffered-merge discipline.
        while (!deliveries_.empty() && deliveries_.top().at <= W) {
            Delivery d = deliveries_.top();
            deliveries_.pop();
            bool rereq = d.kind == interconnect::MsgKind::Rerequest;
            if (d.targeted) {
                if (rereq)
                    nodes_[d.target]->deliverRerequest(d.line, W);
                else
                    nodes_[d.target]->deliverBroadcast(d.line, W);
                win.nodes[d.target].wake = W;
            } else {
                for (auto &node : nodes_) {
                    if (node->id() != d.src) {
                        if (rereq)
                            node->deliverRerequest(d.line, W);
                        else
                            node->deliverBroadcast(d.line, W);
                        win.nodes[node->id()].wake = W;
                    }
                }
            }
        }
        if (prof_)
            prof_->lap(ph_delivery);

        // All cores were already done and the last delivery has just
        // been consumed: the serial loop breaks at this very cycle.
        {
            bool done_at_start = true;
            for (const auto &node : nodes_)
                done_at_start =
                    done_at_start && node->core().done();
            if (done_at_start && deliveries_.empty()) {
                Cycle final_cycle = W;
                for (const auto &st : win.nodes)
                    if (st.doneSeen)
                        final_cycle =
                            std::max(final_cycle, st.doneCycle);
                if (sampler_)
                    sampler_->advance(final_cycle);
                if (prof_)
                    prof_->lap(ph_book);
                return finishRun(final_cycle, loop_ticks);
            }
        }

        // ---- Window end ------------------------------------------
        // Capped by the lookahead, by the next in-flight delivery
        // (sends from *earlier* windows may land mid-lookahead), by
        // the next nominal sample cycle (so the partition of sampler
        // rows into advance() calls — which Delta columns observe —
        // matches the serial loop's), and by the watchdog deadline.
        Cycle deadline =
            last_progress_cycle + config_.watchdogCycles + 1;
        Cycle window_end = W + min_lat;
        window_end = std::min(window_end, nextDeliveryCycle());
        if (sampler_)
            window_end =
                std::min(window_end, sampler_->nextSampleCycle() + 1);
        window_end = std::min(window_end, deadline + 1);
        window_end = std::max(window_end, W + 1);
        const Cycle E = window_end;

        // Pre-extend the shared instruction stream past every probe
        // this window can make (at most fetchWidth per tick per
        // node), so worker threads only ever hit its read-only hot
        // path. Once the stream has ended, further probes are
        // read-only by construction.
        {
            InstSeq max_fetch = 0;
            for (const auto &node : nodes_)
                max_fetch =
                    std::max(max_fetch, node->core().fetchSeq());
            stream_.available(max_fetch +
                              (E - W) * config_.core.fetchWidth);
        }
        if (prof_)
            prof_->lap(ph_oracle);

        // ---- Parallel phase --------------------------------------
        // Only nodes that can act inside [W, E) need running — the
        // serial skip loop elides exactly the same ticks. A lone
        // active node (the common stall-dominated shape: one leader
        // making progress) runs inline, skipping the cross-thread
        // handoff entirely; the result is identical either way
        // because the per-node loops share no state.
        active.clear();
        for (std::size_t i = 0; i < n; ++i) {
            Cycle target = win.nodes[i].wake;
            if (recoveryActive_)
                target = std::min(target,
                                  nodes_[i]->nextRecoveryCycle());
            if (!skipping || target < E)
                active.push_back(i);
        }

        auto runNode = [&](std::size_t i) {
            DataScalarNode &node = *nodes_[i];
            ooo::OoOCore &core = node.core();
            ParallelWindow::NodeState &st = win.nodes[i];
            Cycle c = W;
            while (true) {
                if (skipping) {
                    Cycle target = st.wake;
                    if (recoveryActive_)
                        target = std::min(target,
                                          node.nextRecoveryCycle());
                    c = std::max(c, target);
                }
                if (c >= E)
                    break;
                st.now = c;
                if (recoveryActive_) {
                    st.phase = ParallelWindow::PhaseRecovery;
                    node.checkRecovery(c);
                    st.phase = ParallelWindow::PhaseTick;
                }
                if (!skipping || st.wake <= c) {
                    core.tick(c);
                    st.wake =
                        skipping ? core.nextEventCycle(c) : c + 1;
                    if (!st.doneSeen && core.done()) {
                        st.doneSeen = true;
                        st.doneCycle = c;
                    }
                }
                ++c;
            }
        };

        if (!active.empty()) {
            if (direct) {
                for (std::size_t i : active)
                    nodes_[i]->setTraceSink(&win.nodes[i]);
            }
            pwin_ = &win;
            if (active.size() == 1) {
                runNode(active[0]);
            } else {
                pool.parallelFor(active.size(), [&](std::size_t k) {
                    runNode(active[k]);
                });
            }
            pwin_ = nullptr;
            if (direct) {
                for (std::size_t i : active)
                    nodes_[i]->setTraceSink(direct);
            }
        }
        if (prof_)
            prof_->lap(ph_tick);

        // ---- Barrier: deterministic merge-replay -----------------
        // (cycle, phase, node, seq) reproduces the serial
        // interleaving; replaying sends through broadcastNow() makes
        // bus/ring occupancy, fault decisions (and their trace
        // events), and delivery tie-break order evolve exactly as in
        // the serial loop.
        {
            std::vector<ParallelWindow::Item> merged;
            std::size_t total = 0;
            for (const auto &st : win.nodes)
                total += st.items.size();
            merged.reserve(total);
            for (auto &st : win.nodes) {
                merged.insert(merged.end(), st.items.begin(),
                              st.items.end());
                st.items.clear();
            }
            std::sort(merged.begin(), merged.end(),
                      [](const ParallelWindow::Item &a,
                         const ParallelWindow::Item &b) {
                          if (a.cycle != b.cycle)
                              return a.cycle < b.cycle;
                          if (a.phase != b.phase)
                              return a.phase < b.phase;
                          if (a.node != b.node)
                              return a.node < b.node;
                          return a.seq < b.seq;
                      });
            for (const ParallelWindow::Item &it : merged) {
                if (it.isSend)
                    broadcastNow(it.node, it.line, it.kind, it.ready);
                else
                    tee_.event(it.event);
            }
        }
        if (prof_)
            prof_->lap(ph_barrier);

        // ---- End-of-window bookkeeping (serial loop's tail) ------
        bool all_done = true;
        InstSeq min_commit = ~static_cast<InstSeq>(0);
        for (const auto &node : nodes_) {
            all_done = all_done && node->core().done();
            min_commit =
                std::min(min_commit, node->core().committedSeq());
        }

        if (all_done && deliveries_.empty()) {
            // The last core finished inside this window; the serial
            // loop breaks at the finishing tick's cycle.
            Cycle final_cycle = W;
            for (const auto &st : win.nodes)
                if (st.doneSeen)
                    final_cycle = std::max(final_cycle, st.doneCycle);
            if (sampler_)
                sampler_->advance(final_cycle);
            if (prof_)
                prof_->lap(ph_book);
            return finishRun(final_cycle, loop_ticks);
        }

        stream_.trim(min_commit);

        if (min_commit > last_min_commit) {
            last_min_commit = min_commit;
            // Window-granular progress stamping: at most one window
            // later than the serial loop's per-cycle stamp, which
            // only shifts when a deadlocked run panics (passing runs
            // never get near the deadline — see docs/PERF.md).
            last_progress_cycle = E - 1;
        } else if ((E - 1) - last_progress_cycle >
                   config_.watchdogCycles) {
            watchdogDump(std::cerr, E - 1);
            panic("no commit progress for %llu cycles "
                  "(min committed %llu @ cycle %llu; %zu deliveries "
                  "pending, next at %llu; all_done=%d) -- "
                  "protocol deadlock?",
                  (unsigned long long)config_.watchdogCycles,
                  (unsigned long long)min_commit,
                  (unsigned long long)(E - 1), deliveries_.size(),
                  deliveries_.empty()
                      ? 0ULL
                      : (unsigned long long)deliveries_.top().at,
                  all_done ? 1 : 0);
        }

        // ---- Next window start -----------------------------------
        deadline = last_progress_cycle + config_.watchdogCycles + 1;
        Cycle next = E;
        if (skipping) {
            Cycle soonest = nextDeliveryCycle();
            for (const auto &st : win.nodes)
                soonest = std::min(soonest, st.wake);
            if (recoveryActive_) {
                for (const auto &node : nodes_)
                    soonest =
                        std::min(soonest, node->nextRecoveryCycle());
            }
            next = std::max(E, std::min(soonest, deadline));
        }
        if (sampler_)
            sampler_->advance(next - 1);
        window_start = next;
        if (prof_)
            prof_->lap(ph_book);
    }
}

void
DataScalarSystem::setTraceSink(TraceSink *sink)
{
    tee_.clear();
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
DataScalarSystem::addTraceSink(TraceSink *sink)
{
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
DataScalarSystem::applyTraceSinks()
{
    TraceSink *eff = tee_.empty() ? nullptr : &tee_;
    for (auto &node : nodes_)
        node->setTraceSink(eff);
    faults_.setTraceSink(eff);
}

void
DataScalarSystem::setSampler(obs::Sampler *sampler)
{
    sampler_ = sampler;
    if (!sampler)
        return;
    for (const auto &node : nodes_) {
        const DataScalarNode *n = node.get();
        std::string prefix = "node" + std::to_string(n->id());
        sampler->addColumn(prefix + ".commit_rate",
                           obs::Sampler::Mode::Delta, [n] {
                               return static_cast<std::uint64_t>(
                                   n->core().committedSeq());
                           });
        sampler->addColumn(prefix + ".bshr_occupancy",
                           obs::Sampler::Mode::Level, [n] {
                               return static_cast<std::uint64_t>(
                                   n->bshr().occupancy());
                           });
        sampler->addColumn(prefix + ".dcub_depth",
                           obs::Sampler::Mode::Level, [n] {
                               return static_cast<std::uint64_t>(
                                   n->core().dcubOccupancy());
                           });
    }
    sampler->addColumn("bus_messages", obs::Sampler::Mode::Delta,
                       [this] { return bus_.totalMessages(); });
    sampler->addColumn("bus_busy_cycles", obs::Sampler::Mode::Delta,
                       [this] { return bus_.busyCycles(); });
    if (config_.interconnect == InterconnectKind::Ring) {
        sampler->addColumn("ring_link_busy_cycles",
                           obs::Sampler::Mode::Delta,
                           [this] { return ring_.linkBusyCycles(); });
    }
    // Datathread lead: the node with the highest committed sequence
    // this window (lowest id wins ties), i.e.\ the paper's notion of
    // which node currently leads the datathread.
    sampler->addColumn("lead_node", obs::Sampler::Mode::Level, [this] {
        NodeId lead = 0;
        InstSeq best = 0;
        for (const auto &node : nodes_) {
            InstSeq seq = node->core().committedSeq();
            if (seq > best) {
                best = seq;
                lead = node->id();
            }
        }
        return static_cast<std::uint64_t>(lead);
    });
}

void
DataScalarSystem::watchdogDump(std::ostream &os, Cycle now) const
{
    os << "==== watchdog diagnostics @ cycle " << now << " ====\n";
    for (const auto &node : nodes_)
        node->watchdogDump(os, now);
    os << "in-flight messages: " << deliveries_.size() << '\n';
    auto copy = deliveries_;
    while (!copy.empty()) {
        const Delivery &d = copy.top();
        os << "  " << interconnect::msgKindName(d.kind) << " 0x"
           << std::hex << d.line << std::dec << " from node " << d.src
           << ", delivers @" << d.at;
        if (d.targeted)
            os << " to node " << d.target;
        os << '\n';
        copy.pop();
    }
}

std::shared_ptr<const stats::Snapshot>
DataScalarSystem::snapshotStats() const
{
    auto snap = std::make_shared<stats::Snapshot>();
    stats::Snapshot::GroupEntry &sys = snap->addGroup(
        "system", "---- DataScalarSystem (" +
                      std::to_string(config_.numNodes) +
                      " nodes) ----");
    snap->addCounter(sys, "cycles", lastResult_.cycles,
                     "simulated cycles");
    snap->addCounter(sys, "instructions", lastResult_.instructions,
                     "committed per node (SPSD)");
    snap->addScalar(sys, "ipc", lastResult_.ipc,
                    "instructions per cycle");
    snap->addCounter(sys, "bus_messages", bus_.totalMessages(),
                     "global-bus transactions");
    snap->addCounter(sys, "bus_bytes", bus_.totalBytes(),
                     "global-bus payload+header bytes");
    snap->addCounter(sys, "bus_busy_cycles", bus_.busyCycles(),
                     "cycles the bus was occupied");
    if (config_.interconnect == InterconnectKind::Ring) {
        snap->addCounter(sys, "ring_messages", ring_.totalMessages(),
                         "ring broadcasts");
        snap->addCounter(sys, "ring_link_busy_cycles",
                         ring_.linkBusyCycles(),
                         "summed link occupancy");
    }
    if (faults_.enabled()) {
        const interconnect::FaultStats &fs = faults_.faultStats();
        snap->addCounter(sys, "fault_decisions", fs.decisions,
                         "transmissions considered");
        snap->addCounter(sys, "fault_drops", fs.drops,
                         "transmissions lost");
        snap->addCounter(sys, "fault_duplicates", fs.duplicates,
                         "transmissions duplicated");
        snap->addCounter(sys, "fault_delays", fs.delays,
                         "deliveries jittered");
        snap->addCounter(sys, "fault_delay_cycles", fs.delayCycles,
                         "summed injected jitter");
    }
    for (const auto &node : nodes_)
        node->buildStats(*snap);
    if (prof_)
        obs::addProfileGroup(*snap, *prof_,
                             profEndNs_ - profStartNs_);
    return snap;
}

void
DataScalarSystem::dumpStats(std::ostream &os) const
{
    snapshotStats()->dump(os);
}

bool
DataScalarSystem::protocolDrained() const
{
    if (!deliveries_.empty())
        return false;
    for (const auto &node : nodes_)
        if (!node->bshr().drained())
            return false;
    return true;
}

} // namespace core
} // namespace dscalar
