/**
 * @file
 * One DataScalar node: an out-of-order core tightly coupled with a
 * slice of main memory, a BSHR bank, and the ESP protocol glue
 * (Figure 5's datapath).
 */

#ifndef DSCALAR_CORE_NODE_HH
#define DSCALAR_CORE_NODE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>

#include "common/trace.hh"
#include "core/bshr.hh"
#include "core/sim_config.hh"
#include "interconnect/message.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"
#include "stats/snapshot.hh"

namespace dscalar {
namespace core {

/** Sink for broadcasts a node places on the global interconnect. */
class BroadcastPort
{
  public:
    virtual ~BroadcastPort() = default;

    /**
     * Place a broadcast of @p line on the bus, available to enter
     * the broadcast queue at cycle @p ready.
     */
    virtual void broadcast(NodeId src, Addr line,
                           interconnect::MsgKind kind, Cycle ready) = 0;
};

/** Per-node protocol event counters. */
struct NodeStats
{
    std::uint64_t localLoadFills = 0;
    std::uint64_t ownerBroadcasts = 0;      ///< sent at issue time
    std::uint64_t reparativeBroadcasts = 0; ///< sent at commit (late)
    std::uint64_t remoteFetches = 0;        ///< BSHR waits + hits
    std::uint64_t localWriteBacks = 0;
    std::uint64_t droppedWriteBacks = 0;
    std::uint64_t localStoreWrites = 0;
    std::uint64_t droppedStoreWrites = 0;
    std::uint64_t instLineFills = 0;
    std::uint64_t rerequestsSent = 0;      ///< recovery retries issued
    std::uint64_t recoveryBroadcasts = 0;  ///< re-requests answered

    std::uint64_t
    totalBroadcasts() const
    {
        return ownerBroadcasts + reparativeBroadcasts;
    }
};

/** Processor + memory + BSHR node of a DataScalar system. */
class DataScalarNode : public ooo::MemBackend
{
  public:
    DataScalarNode(NodeId id, const SimConfig &config,
                   const mem::PageTable &ptable,
                   ooo::OracleStream &stream, BroadcastPort &port);

    NodeId id() const { return id_; }
    ooo::OoOCore &core() { return core_; }
    const ooo::OoOCore &core() const { return core_; }
    const Bshr &bshr() const { return bshr_; }
    const NodeStats &nodeStats() const { return stats_; }
    const mem::MainMemory &localMemory() const { return localMem_; }

    /** A broadcast arrived from the bus at cycle @p now. */
    void deliverBroadcast(Addr line, Cycle now);

    /** A MsgKind::Rerequest for @p line arrived at cycle @p now;
     *  the owner answers with a fresh broadcast, others ignore it. */
    void deliverRerequest(Addr line, Cycle now);

    /**
     * Re-request recovery scan: every armed line whose deadline has
     * passed sends MsgKind::Rerequest to its owner and backs off
     * exponentially. No-op unless rerequestTimeout > 0.
     */
    void checkRecovery(Cycle now);

    /** Earliest cycle checkRecovery could act, or cycleMax — feeds
     *  the event-driven run loop's skip horizon. */
    Cycle nextRecoveryCycle() const;

    /** Emit typed protocol events to @p sink; nullptr disables. */
    void setTraceSink(TraceSink *sink);

    /** Write a gem5-style stats block for this node. */
    void dumpStats(std::ostream &os) const;

    /** Append this node's stats as group "node<id>" to @p snap; the
     *  text dump renders from the same snapshot. */
    void buildStats(stats::Snapshot &snap) const;

    /** Structured deadlock diagnostics: pipeline head, BSHR contents
     *  with ages, armed re-requests. */
    void watchdogDump(std::ostream &os, Cycle now) const;

    // MemBackend interface --------------------------------------------
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;
    bool canAcceptFetch(Addr line) const override;
    bool fetchesMayStall() const override { return hardBshr_; }

  private:
    /** Re-request state for one line with a timed-out BSHR waiter. */
    struct RetryState
    {
        unsigned attempts = 0;
        Cycle nextAt = 0; ///< next re-request deadline
    };

    bool isLocal(Addr line) const;
    bool isOwner(Addr line) const;

    void traceEvent(Cycle now, TraceEventKind kind, Addr line) const;
    /** Arm or clear retry tracking after data for @p line arrived. */
    void recoverySettle(Addr line, Cycle now);

    NodeId id_;
    const mem::PageTable &ptable_;
    BroadcastPort &port_;
    mem::MainMemory localMem_;
    Bshr bshr_;
    // Recovery configuration (0 timeout = recovery off). Initialized
    // before core_: its constructor queries fetchesMayStall().
    Cycle rerequestTimeout_ = 0;
    Cycle backoffCap_ = 0;
    unsigned maxRetries_ = 0;
    bool hardBshr_ = false;
    ooo::OoOCore core_;
    NodeStats stats_;
    TraceSink *trace_ = nullptr;
    /** Armed re-requests by line; ordered so scan order (and thus
     *  interconnect call order) is deterministic. */
    std::map<Addr, RetryState> rerequests_;
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_NODE_HH
