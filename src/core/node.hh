/**
 * @file
 * One DataScalar node: an out-of-order core tightly coupled with a
 * slice of main memory, a BSHR bank, and the ESP protocol glue
 * (Figure 5's datapath).
 */

#ifndef DSCALAR_CORE_NODE_HH
#define DSCALAR_CORE_NODE_HH

#include <cstdint>
#include <memory>
#include <ostream>

#include "core/bshr.hh"
#include "core/sim_config.hh"
#include "interconnect/message.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"

namespace dscalar {
namespace core {

/** Sink for broadcasts a node places on the global interconnect. */
class BroadcastPort
{
  public:
    virtual ~BroadcastPort() = default;

    /**
     * Place a broadcast of @p line on the bus, available to enter
     * the broadcast queue at cycle @p ready.
     */
    virtual void broadcast(NodeId src, Addr line,
                           interconnect::MsgKind kind, Cycle ready) = 0;
};

/** Per-node protocol event counters. */
struct NodeStats
{
    std::uint64_t localLoadFills = 0;
    std::uint64_t ownerBroadcasts = 0;      ///< sent at issue time
    std::uint64_t reparativeBroadcasts = 0; ///< sent at commit (late)
    std::uint64_t remoteFetches = 0;        ///< BSHR waits + hits
    std::uint64_t localWriteBacks = 0;
    std::uint64_t droppedWriteBacks = 0;
    std::uint64_t localStoreWrites = 0;
    std::uint64_t droppedStoreWrites = 0;
    std::uint64_t instLineFills = 0;

    std::uint64_t
    totalBroadcasts() const
    {
        return ownerBroadcasts + reparativeBroadcasts;
    }
};

/** Processor + memory + BSHR node of a DataScalar system. */
class DataScalarNode : public ooo::MemBackend
{
  public:
    DataScalarNode(NodeId id, const SimConfig &config,
                   const mem::PageTable &ptable,
                   ooo::OracleStream &stream, BroadcastPort &port);

    NodeId id() const { return id_; }
    ooo::OoOCore &core() { return core_; }
    const ooo::OoOCore &core() const { return core_; }
    const Bshr &bshr() const { return bshr_; }
    const NodeStats &nodeStats() const { return stats_; }
    const mem::MainMemory &localMemory() const { return localMem_; }

    /** A broadcast arrived from the bus at cycle @p now. */
    void deliverBroadcast(Addr line, Cycle now);

    /** Stream protocol events ("node 1 @c: broadcast 0x...") to
     *  @p os; nullptr disables tracing. */
    void setTrace(std::ostream *os) { trace_ = os; }

    /** Write a gem5-style stats block for this node. */
    void dumpStats(std::ostream &os) const;

    // MemBackend interface --------------------------------------------
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;

  private:
    bool isLocal(Addr line) const;
    bool isOwner(Addr line) const;

    void traceEvent(Cycle now, const char *event, Addr line) const;

    NodeId id_;
    const mem::PageTable &ptable_;
    BroadcastPort &port_;
    mem::MainMemory localMem_;
    Bshr bshr_;
    ooo::OoOCore core_;
    NodeStats stats_;
    std::ostream *trace_ = nullptr;
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_NODE_HH
