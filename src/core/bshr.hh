/**
 * @file
 * Broadcast Status Holding Registers (Section 4.2, Figure 5).
 *
 * Arriving broadcasts are matched associatively against outstanding
 * local requests: a match wakes the waiting load; otherwise the data
 * are buffered so a later local request "effectively sees an on-chip
 * hit". Entries allocated for broadcasts that the local node turns
 * out not to need (false hits detected at commit) are squashed.
 */

#ifndef DSCALAR_CORE_BSHR_HH
#define DSCALAR_CORE_BSHR_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace dscalar {
namespace core {

/** BSHR event counters (Table 3's raw material). */
struct BshrStats
{
    std::uint64_t waiterAllocs = 0;   ///< misses that had to wait
    std::uint64_t bufferedHits = 0;   ///< data already waiting (col 3)
    std::uint64_t deliveries = 0;     ///< broadcasts received
    std::uint64_t wokenWaiters = 0;
    std::uint64_t buffered = 0;
    std::uint64_t squashes = 0;       ///< entries squashed (col 2)
    std::uint64_t maxOccupancy = 0;
    std::uint64_t overflowEvents = 0; ///< occupancy above capacity
    std::uint64_t fullDrops = 0;      ///< hard mode refused to buffer

    /** Accesses = local lookups + deliveries (squash denominator). */
    std::uint64_t
    accesses() const
    {
        return waiterAllocs + bufferedHits + deliveries;
    }
};

/** Diagnostic snapshot of one allocated BSHR line (watchdog dump). */
struct BshrEntryInfo
{
    Addr line = invalidAddr;
    unsigned waiters = 0;
    unsigned buffered = 0;
    unsigned pendingSquashes = 0;
    Cycle firstWaitAt = 0; ///< cycle the oldest current waiter arrived
};

/** One node's BSHR bank. */
class Bshr
{
  public:
    Bshr(Cycle latency, unsigned capacity, bool hard_capacity = false)
        : latency_(latency), capacity_(capacity), hard_(hard_capacity)
    {
    }

    /** Outcome of a local request for a remote line. */
    enum class Lookup : std::uint8_t {
        FoundBuffered, ///< broadcast already arrived; data ready
        Waiting        ///< entry allocated; fill will be signalled
    };

    /** Outcome of an arriving broadcast. */
    enum class Deliver : std::uint8_t {
        WokeWaiter, ///< satisfied an outstanding local request
        Buffered,   ///< stored for a future local request
        Squashed,   ///< dropped (local node committed a false hit)
        DroppedFull ///< hard-capacity bank full; needs re-request
    };

    /**
     * The local core missed on a communicated, unowned line.
     * @param ready_at set to the data-ready cycle on FoundBuffered.
     */
    Lookup requestLine(Addr line, Cycle now, Cycle &ready_at);

    /**
     * A broadcast for @p line arrived from the bus.
     * @param ready_at set to the data-ready cycle on WokeWaiter.
     */
    Deliver deliver(Addr line, Cycle now, Cycle &ready_at);

    /**
     * The local commit stream proved this node never needed the next
     * broadcast of @p line (pure false hit): squash it, now if
     * buffered, or on arrival otherwise.
     * @return true when a buffered entry was squashed immediately.
     */
    bool registerSquash(Addr line);

    /** Waiters + buffered lines currently held. */
    std::size_t occupancy() const { return occupancy_; }

    /**
     * Hard-capacity flow control: can a new waiter for @p line be
     * allocated? Always true in soft mode; in hard mode, true while
     * the bank has a free entry or data for @p line already sit
     * buffered (the request consumes, not allocates).
     */
    bool canAccept(Addr line) const;

    /** Outstanding local waiters for @p line. */
    unsigned waiterCount(Addr line) const;

    /** Allocated lines (waiters/buffers/squashes), sorted by line
     *  address — diagnostic, for the watchdog dump. */
    std::vector<BshrEntryInfo> entries() const;

    /** True when no waiter, buffer, or pending squash remains. */
    bool drained() const;

    const BshrStats &bshrStats() const { return stats_; }

  private:
    struct LineState
    {
        unsigned waiters = 0;
        unsigned buffered = 0;
        unsigned pendingSquashes = 0;
        Cycle firstWaitAt = 0; ///< arrival of the oldest live waiter
        bool
        idle() const
        {
            return waiters == 0 && buffered == 0 && pendingSquashes == 0;
        }
    };

    void bumpOccupancy(int delta);
    void eraseIfIdle(Addr line);

    Cycle latency_;
    unsigned capacity_;
    bool hard_ = false;
    std::size_t occupancy_ = 0;
    std::unordered_map<Addr, LineState> lines_;
    BshrStats stats_;
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_BSHR_HH
