/**
 * @file
 * Result communication (paper Section 5.1) — analytical model.
 *
 * "Because each processor executes the instructions in a different
 * order, it is possible for a processor to temporarily deviate from
 * the ESP model and execute a private computation, broadcasting only
 * the result — not the operands — to the other processors."
 *
 * The paper proposes but does not evaluate this; we model it the
 * same way Figure 3 models datathreading: count the traffic and the
 * serialized critical path of a private region under plain ESP
 * (every operand broadcast) versus result communication (operands
 * consumed locally by the owner, only results broadcast).
 */

#ifndef DSCALAR_CORE_RESULT_COMM_HH
#define DSCALAR_CORE_RESULT_COMM_HH

#include "common/types.hh"
#include "interconnect/bus.hh"
#include "mem/main_memory.hh"

namespace dscalar {
namespace core {

/**
 * A private computation region: a block of code whose memory
 * operands all live on one node and whose effect is summarized by a
 * handful of register results.
 */
struct PrivateRegion
{
    unsigned operandLoads = 0;  ///< communicated-line loads inside
    unsigned resultValues = 1;  ///< 8-byte results to publish
    Cycle computeCycles = 0;    ///< dependent-compute length
};

/** Traffic and latency of the region under both schemes. */
struct ResultCommEstimate
{
    std::uint64_t espBytes = 0;
    std::uint64_t rcBytes = 0;
    std::uint64_t espMessages = 0;
    std::uint64_t rcMessages = 0;
    /** Cycle the last non-owner can use the region's results. */
    Cycle espCriticalPath = 0;
    Cycle rcCriticalPath = 0;

    double
    byteSavings() const
    {
        return espBytes ? 1.0 - static_cast<double>(rcBytes) /
                                    static_cast<double>(espBytes)
                        : 0.0;
    }
};

/**
 * Estimate the region under the given interconnect and memory
 * parameters (@p line_size is the broadcast payload under ESP).
 */
ResultCommEstimate
estimateResultComm(const PrivateRegion &region,
                   const interconnect::BusParams &bus,
                   const mem::MainMemoryParams &mem,
                   unsigned line_size);

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_RESULT_COMM_HH
