/**
 * @file
 * Static page placement: replication of hot pages plus round-robin
 * block distribution of the communicated remainder (Section 3.2).
 */

#ifndef DSCALAR_CORE_DISTRIBUTION_HH
#define DSCALAR_CORE_DISTRIBUTION_HH

#include <cstdint>
#include <map>

#include "mem/page_table.hh"
#include "prog/program.hh"

namespace dscalar {
namespace core {

/** Per-page access counts gathered by a profiling run. */
using PageHeat = std::map<Addr, std::uint64_t>;

/** Placement policy parameters. */
struct DistributionConfig
{
    unsigned numNodes = 2;
    /** Replicate all text pages at every node (paper Section 4.2).
     *  When false, text pages compete in the hot-page ranking and
     *  the remainder is distributed (the paper's Table 2 setup). */
    bool replicateText = true;
    /** Replicate the N hottest pages (requires a heat profile).
     *  Ranks data pages only when replicateText is set. */
    std::size_t replicatedDataPages = 0;
    /** Round-robin granularity, in pages, for communicated data. */
    unsigned blockPages = 1;
};

/** Counts of replicated pages per segment (Table 2 columns 2-6). */
struct ReplicationReport
{
    std::size_t text = 0;
    std::size_t global = 0;
    std::size_t heap = 0;
    std::size_t stack = 0;
    std::size_t total() const { return text + global + heap + stack; }
};

/**
 * Build the system page table for @p program.
 *
 * Pages are replicated according to @p config (text pages, plus the
 * hottest data pages when @p heat is provided); everything else is
 * distributed round-robin across nodes in blocks of
 * config.blockPages consecutive pages.
 *
 * @param report optional out-parameter describing what was
 *        replicated, printed by the Table 2 bench.
 */
mem::PageTable buildPageTable(const prog::Program &program,
                              const DistributionConfig &config,
                              const PageHeat *heat = nullptr,
                              ReplicationReport *report = nullptr);

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_DISTRIBUTION_HH
