/**
 * @file
 * Shared helpers for the conservative-window parallel run loop.
 *
 * The DataScalar nodes interact only through interconnect deliveries,
 * and every delivery is at least one cycle away from its send: on the
 * bus a message pays the interface penalty plus its occupancy before
 * any receiver sees it, and on the ring it additionally pays the
 * first hop's latency. That minimum cross-node delivery latency is a
 * provably safe synchronization window — ticking every node
 * independently for fewer cycles than it cannot miss or reorder any
 * cross-node interaction, which is the classic conservative
 * (lookahead-based) parallel discrete-event simulation argument.
 * See docs/PERF.md ("Intra-simulation parallelism").
 */

#ifndef DSCALAR_CORE_PARALLEL_TICK_HH
#define DSCALAR_CORE_PARALLEL_TICK_HH

#include "common/types.hh"
#include "core/sim_config.hh"

namespace dscalar {
namespace core {

/**
 * Minimum cycles between any node's broadcast() call and the
 * earliest delivery it can produce at another node, over every
 * message kind the DataScalar protocol can emit under @p config
 * (Broadcast and ReparativeBroadcast always; Rerequest only when
 * recovery is enabled). Fault injection can only delay or duplicate
 * deliveries, never accelerate them, so the bound holds on faulty
 * media too.
 *
 * Fatal (clear configuration error, not a panic) when the bound is
 * zero — e.g. headerBytes == 0 with interfacePenalty == 0 — since a
 * zero-latency interconnect admits no parallel window.
 */
Cycle minCrossNodeLatency(const SimConfig &config);

/**
 * Resolve a requested tick-thread count: 0 means hardware
 * concurrency; the result is clamped to @p num_nodes (a thread per
 * node is the maximum useful parallelism) and never below 1.
 */
unsigned resolveTickThreads(unsigned requested, unsigned num_nodes);

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_PARALLEL_TICK_HH
