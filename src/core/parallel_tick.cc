#include "core/parallel_tick.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "interconnect/bus.hh"
#include "interconnect/message.hh"
#include "interconnect/ring.hh"

namespace dscalar {
namespace core {

Cycle
minCrossNodeLatency(const SimConfig &config)
{
    using interconnect::MsgKind;

    // The smallest message the protocol can put on the wire: a
    // Rerequest is header-only, broadcasts carry a line. Only kinds
    // the configuration can actually emit bound the window.
    unsigned line_size = config.core.dcache.lineSize;
    std::size_t min_bytes = interconnect::messageBytes(
        MsgKind::Broadcast, line_size,
        config.interconnect == InterconnectKind::Ring
            ? config.ring.headerBytes
            : config.bus.headerBytes);
    if (config.rerequestTimeout > 0) {
        min_bytes = std::min(
            min_bytes,
            interconnect::messageBytes(
                MsgKind::Rerequest, line_size,
                config.interconnect == InterconnectKind::Ring
                    ? config.ring.headerBytes
                    : config.bus.headerBytes));
    }

    Cycle lat;
    if (config.interconnect == InterconnectKind::Ring) {
        // First receiver: interface penalty, one link serialization,
        // one hop of wire/router latency (Ring::traverse).
        interconnect::Ring probe(std::max(config.numNodes, 2u),
                                 config.ring);
        lat = config.ring.interfacePenalty +
              probe.serializationCycles(min_bytes) +
              config.ring.hopLatency;
    } else {
        // Bus receivers see the message when it leaves the bus:
        // interface penalty plus full occupancy (Bus::send).
        interconnect::Bus probe(config.bus);
        lat = config.bus.interfacePenalty +
              probe.occupancyCycles(min_bytes);
    }

    fatal_if(lat == 0,
             "tickThreads > 1 requires a minimum cross-node delivery "
             "latency of at least 1 cycle, but this configuration's "
             "is 0 (%s: interfacePenalty=%llu, smallest message %zu "
             "bytes) -- parallel node ticking has no safe window; "
             "raise interfacePenalty/headerBytes or run with "
             "--tick-threads=1",
             config.interconnect == InterconnectKind::Ring ? "ring"
                                                           : "bus",
             (unsigned long long)(
                 config.interconnect == InterconnectKind::Ring
                     ? config.ring.interfacePenalty
                     : config.bus.interfacePenalty),
             min_bytes);
    return lat;
}

unsigned
resolveTickThreads(unsigned requested, unsigned num_nodes)
{
    unsigned threads = requested;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min(threads, std::max(num_nodes, 1u));
    return std::max(threads, 1u);
}

} // namespace core
} // namespace dscalar
