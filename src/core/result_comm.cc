#include "core/result_comm.hh"

#include <algorithm>

namespace dscalar {
namespace core {

ResultCommEstimate
estimateResultComm(const PrivateRegion &region,
                   const interconnect::BusParams &bus,
                   const mem::MainMemoryParams &mem,
                   unsigned line_size)
{
    ResultCommEstimate est;

    const std::uint64_t line_msg = bus.headerBytes + line_size;
    const std::uint64_t result_msg = bus.headerBytes + 8;

    interconnect::Bus esp_bus(bus);
    interconnect::Bus rc_bus(bus);

    // Owner-side local fetch of the operands: banked and pipelined.
    mem::MainMemory banks(mem);
    Cycle fetch_done = 0;
    for (unsigned i = 0; i < region.operandLoads; ++i) {
        fetch_done = std::max(
            fetch_done,
            banks.request(static_cast<Addr>(i) * line_size, 0));
    }

    // --- Plain ESP: every operand line is broadcast. -------------
    est.espMessages = region.operandLoads;
    est.espBytes = est.espMessages * line_msg;
    Cycle last_operand_arrival = 0;
    for (unsigned i = 0; i < region.operandLoads; ++i) {
        last_operand_arrival = esp_bus.send(
            interconnect::MsgKind::Broadcast, line_size, fetch_done);
    }
    // Non-owners then run the dependent computation themselves.
    est.espCriticalPath = last_operand_arrival + region.computeCycles;

    // --- Result communication: owner computes, publishes results. -
    est.rcMessages = region.resultValues;
    est.rcBytes = est.rcMessages * result_msg;
    Cycle owner_done = fetch_done + region.computeCycles;
    Cycle last_result_arrival = owner_done;
    for (unsigned r = 0; r < region.resultValues; ++r) {
        last_result_arrival =
            rc_bus.send(interconnect::MsgKind::Broadcast, 8,
                        owner_done);
    }
    est.rcCriticalPath = last_result_arrival;

    return est;
}

} // namespace core
} // namespace dscalar
