#include "core/node.hh"

#include <cstring>

#include "common/logging.hh"

namespace dscalar {
namespace core {

using interconnect::MsgKind;

DataScalarNode::DataScalarNode(NodeId id, const SimConfig &config,
                               const mem::PageTable &ptable,
                               ooo::OracleStream &stream,
                               BroadcastPort &port)
    : id_(id), ptable_(ptable), port_(port), localMem_(config.mem),
      bshr_(config.bshrLatency, config.bshrCapacity),
      core_(config.core, stream, *this)
{
}

bool
DataScalarNode::isLocal(Addr line) const
{
    return ptable_.isLocal(line, id_);
}

bool
DataScalarNode::isOwner(Addr line) const
{
    return !ptable_.isReplicated(line) && ptable_.owner(line) == id_;
}

ooo::FillResult
DataScalarNode::startLineFetch(Addr line, Cycle now)
{
    if (isLocal(line)) {
        Cycle done = localMem_.request(line, now);
        ++stats_.localLoadFills;
        if (isOwner(line)) {
            // ESP: push the operand to every other node.
            ++stats_.ownerBroadcasts;
            traceEvent(now, "broadcast", line);
            port_.broadcast(id_, line, MsgKind::Broadcast, done);
        }
        return {done, false};
    }

    // Communicated line owned elsewhere: never send a request --
    // match or await the owner's broadcast in the BSHR.
    ++stats_.remoteFetches;
    Cycle ready = 0;
    if (bshr_.requestLine(line, now, ready) == Bshr::Lookup::FoundBuffered)
        return {ready, true};
    return {cycleMax, false};
}

void
DataScalarNode::onUnclaimedCanonicalMiss(Addr line, Cycle now)
{
    if (ptable_.isReplicated(line)) {
        // Local at every node; the canonical refill is a local access
        // off the critical path.
        localMem_.request(line, now);
        return;
    }
    if (isOwner(line)) {
        // Reparative broadcast: the other nodes are (or will be)
        // waiting for data this node's issue stream never missed on.
        ++stats_.reparativeBroadcasts;
        traceEvent(now, "reparative-broadcast", line);
        port_.broadcast(id_, line, MsgKind::ReparativeBroadcast, now);
    } else {
        bshr_.registerSquash(line);
    }
}

void
DataScalarNode::writeBack(Addr line, Cycle now)
{
    if (isLocal(line)) {
        ++stats_.localWriteBacks;
        localMem_.request(line, now);
    } else {
        // ESP: every node computes the same stores; only the owner
        // completes the write-back. Dropped without bus traffic.
        ++stats_.droppedWriteBacks;
    }
}

void
DataScalarNode::storeMiss(Addr line, Cycle now)
{
    if (isLocal(line)) {
        ++stats_.localStoreWrites;
        localMem_.request(line, now);
    } else {
        ++stats_.droppedStoreWrites;
    }
}

Cycle
DataScalarNode::fetchInstLine(Addr line, Cycle now)
{
    fatal_if(!isLocal(line),
             "DataScalar requires program text to be replicated "
             "(instruction line 0x%llx is remote at node %u)",
             (unsigned long long)line, id_);
    ++stats_.instLineFills;
    return localMem_.request(line, now);
}

void
DataScalarNode::deliverBroadcast(Addr line, Cycle now)
{
    Cycle ready = 0;
    switch (bshr_.deliver(line, now, ready)) {
      case Bshr::Deliver::WokeWaiter:
        traceEvent(now, "bshr-wake", line);
        core_.fillArrived(line, ready, now);
        break;
      case Bshr::Deliver::Buffered:
        traceEvent(now, "bshr-buffer", line);
        break;
      case Bshr::Deliver::Squashed:
        traceEvent(now, "bshr-squash", line);
        break;
    }
}

void
DataScalarNode::traceEvent(Cycle now, const char *event,
                           Addr line) const
{
    if (trace_) {
        *trace_ << "node " << id_ << " @" << now << ": " << event
                << " 0x" << std::hex << line << std::dec << '\n';
    }
}

void
DataScalarNode::dumpStats(std::ostream &os) const
{
    const ooo::CoreStats &cs = core_.coreStats();
    const BshrStats &bs = bshr_.bshrStats();
    auto line = [&os](const char *name, std::uint64_t v,
                      const char *desc) {
        os << "  " << name;
        for (std::size_t i = std::strlen(name); i < 34; ++i)
            os << ' ';
        os << v << "  # " << desc << '\n';
    };
    os << "node" << id_ << ":\n";
    line("committed", cs.committed, "instructions committed");
    line("loads", cs.loads, "loads committed");
    line("stores", cs.stores, "stores committed");
    line("load_issue_misses", cs.loadIssueMisses,
         "issue-time L1D misses (DCUB fetches)");
    line("canonical_load_misses", cs.canonicalLoadMisses,
         "commit-time (canonical) load misses");
    line("false_hits", cs.falseHits,
         "issue hit but canonical miss");
    line("false_misses", cs.falseMisses,
         "issue miss but canonical hit");
    line("unclaimed_repairs", cs.unclaimedRepairs,
         "canonical misses with no local fetch");
    line("store_commit_misses", cs.storeCommitMisses,
         "stores missing at commit");
    line("dirty_writebacks", cs.dirtyWriteBacks,
         "dirty victims evicted");
    line("icache_misses", cs.icacheMisses, "instruction-line fills");
    line("owner_broadcasts", stats_.ownerBroadcasts,
         "ESP broadcasts sent at issue");
    line("reparative_broadcasts", stats_.reparativeBroadcasts,
         "late broadcasts sent at commit");
    line("remote_fetches", stats_.remoteFetches,
         "fetches of unowned communicated lines");
    line("dropped_writebacks", stats_.droppedWriteBacks,
         "write-backs completed by another owner");
    line("dropped_store_writes", stats_.droppedStoreWrites,
         "store-miss writes completed elsewhere");
    line("bshr_waiter_allocs", bs.waiterAllocs,
         "misses that awaited a broadcast");
    line("bshr_buffered_hits", bs.bufferedHits,
         "data already waiting in the BSHR");
    line("bshr_squashes", bs.squashes, "squashed BSHR entries");
    line("bshr_max_occupancy", bs.maxOccupancy,
         "peak BSHR entries in use");
}

} // namespace core
} // namespace dscalar
