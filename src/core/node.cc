#include "core/node.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace dscalar {
namespace core {

using interconnect::MsgKind;

DataScalarNode::DataScalarNode(NodeId id, const SimConfig &config,
                               const mem::PageTable &ptable,
                               ooo::OracleStream &stream,
                               BroadcastPort &port)
    : id_(id), ptable_(ptable), port_(port), localMem_(config.mem),
      bshr_(config.bshrLatency, config.bshrCapacity,
            config.bshrHardCapacity),
      rerequestTimeout_(config.rerequestTimeout),
      backoffCap_(config.rerequestBackoffCap
                      ? config.rerequestBackoffCap
                      : 8 * config.rerequestTimeout),
      maxRetries_(config.rerequestMaxRetries),
      hardBshr_(config.bshrHardCapacity),
      core_(config.core, stream, *this)
{
}

bool
DataScalarNode::isLocal(Addr line) const
{
    return ptable_.isLocal(line, id_);
}

bool
DataScalarNode::isOwner(Addr line) const
{
    return !ptable_.isReplicated(line) && ptable_.owner(line) == id_;
}

ooo::FillResult
DataScalarNode::startLineFetch(Addr line, Cycle now)
{
    if (isLocal(line)) {
        Cycle done = localMem_.request(line, now);
        ++stats_.localLoadFills;
        if (isOwner(line)) {
            // ESP: push the operand to every other node.
            ++stats_.ownerBroadcasts;
            traceEvent(now, TraceEventKind::Broadcast, line);
            port_.broadcast(id_, line, MsgKind::Broadcast, done);
        }
        return {done, false};
    }

    // Communicated line owned elsewhere: never send a request --
    // match or await the owner's broadcast in the BSHR.
    ++stats_.remoteFetches;
    Cycle ready = 0;
    if (bshr_.requestLine(line, now, ready) == Bshr::Lookup::FoundBuffered)
        return {ready, true};
    if (rerequestTimeout_ > 0) {
        // Arm recovery: if no broadcast lands within the timeout,
        // re-request the line from its owner. An existing entry keeps
        // its (earlier) deadline.
        rerequests_.emplace(line,
                            RetryState{0, now + rerequestTimeout_});
    }
    return {cycleMax, false};
}

void
DataScalarNode::onUnclaimedCanonicalMiss(Addr line, Cycle now)
{
    if (ptable_.isReplicated(line)) {
        // Local at every node; the canonical refill is a local access
        // off the critical path.
        localMem_.request(line, now);
        return;
    }
    if (isOwner(line)) {
        // Reparative broadcast: the other nodes are (or will be)
        // waiting for data this node's issue stream never missed on.
        ++stats_.reparativeBroadcasts;
        traceEvent(now, TraceEventKind::ReparativeBroadcast, line);
        port_.broadcast(id_, line, MsgKind::ReparativeBroadcast, now);
    } else {
        bshr_.registerSquash(line);
    }
}

void
DataScalarNode::writeBack(Addr line, Cycle now)
{
    if (isLocal(line)) {
        ++stats_.localWriteBacks;
        localMem_.request(line, now);
    } else {
        // ESP: every node computes the same stores; only the owner
        // completes the write-back. Dropped without bus traffic.
        ++stats_.droppedWriteBacks;
    }
}

void
DataScalarNode::storeMiss(Addr line, Cycle now)
{
    if (isLocal(line)) {
        ++stats_.localStoreWrites;
        localMem_.request(line, now);
    } else {
        ++stats_.droppedStoreWrites;
    }
}

Cycle
DataScalarNode::fetchInstLine(Addr line, Cycle now)
{
    fatal_if(!isLocal(line),
             "DataScalar requires program text to be replicated "
             "(instruction line 0x%llx is remote at node %u)",
             (unsigned long long)line, id_);
    ++stats_.instLineFills;
    return localMem_.request(line, now);
}

void
DataScalarNode::deliverBroadcast(Addr line, Cycle now)
{
    Cycle ready = 0;
    switch (bshr_.deliver(line, now, ready)) {
      case Bshr::Deliver::WokeWaiter:
        traceEvent(now, TraceEventKind::BshrWake, line);
        core_.fillArrived(line, ready, now);
        recoverySettle(line, now);
        break;
      case Bshr::Deliver::Buffered:
        traceEvent(now, TraceEventKind::BshrBuffer, line);
        recoverySettle(line, now);
        break;
      case Bshr::Deliver::Squashed:
        traceEvent(now, TraceEventKind::BshrSquash, line);
        break;
      case Bshr::Deliver::DroppedFull:
        // Hard-capacity bank refused the data; any node that later
        // misses on the line recovers it via re-request.
        traceEvent(now, TraceEventKind::BshrDropFull, line);
        break;
    }
}

void
DataScalarNode::deliverRerequest(Addr line, Cycle now)
{
    // Only the owner can answer; every other node sees the
    // re-request on the broadcast medium and ignores it.
    if (!isOwner(line))
        return;
    ++stats_.recoveryBroadcasts;
    traceEvent(now, TraceEventKind::RecoveryBroadcast, line);
    Cycle done = localMem_.request(line, now);
    port_.broadcast(id_, line, MsgKind::Broadcast, done);
}

void
DataScalarNode::recoverySettle(Addr line, Cycle now)
{
    if (rerequestTimeout_ == 0)
        return;
    auto it = rerequests_.find(line);
    if (it == rerequests_.end())
        return;
    if (bshr_.waiterCount(line) > 0) {
        // Data flowed but more waiters remain (e.g.\ a duplicate miss
        // episode): restart the clock with a clean attempt count.
        it->second = RetryState{0, now + rerequestTimeout_};
    } else {
        rerequests_.erase(it);
    }
}

void
DataScalarNode::checkRecovery(Cycle now)
{
    if (rerequestTimeout_ == 0)
        return;
    for (auto &[line, st] : rerequests_) {
        if (st.nextAt > now)
            continue;
        if (bshr_.waiterCount(line) == 0) {
            // Waiter satisfied through another path (e.g.\ buffered
            // hit); the entry is swept here rather than erased
            // mid-loop.
            st.nextAt = cycleMax;
            continue;
        }
        panic_if(st.attempts >= maxRetries_,
                 "node %u: line 0x%llx still missing after %u "
                 "re-requests -- owner unreachable?",
                 id_, (unsigned long long)line, st.attempts);
        ++stats_.rerequestsSent;
        traceEvent(now, TraceEventKind::Rerequest, line);
        port_.broadcast(id_, line, MsgKind::Rerequest, now);
        ++st.attempts;
        // Exponential backoff: timeout, 2*timeout, ... capped.
        Cycle backoff = rerequestTimeout_;
        for (unsigned i = 0; i < st.attempts && backoff < backoffCap_;
             ++i)
            backoff *= 2;
        st.nextAt = now + std::min(backoff, backoffCap_);
    }
}

Cycle
DataScalarNode::nextRecoveryCycle() const
{
    Cycle soonest = cycleMax;
    for (const auto &[line, st] : rerequests_)
        soonest = std::min(soonest, st.nextAt);
    return soonest;
}

void
DataScalarNode::setTraceSink(TraceSink *sink)
{
    trace_ = sink;
    core_.setTraceSink(sink, id_);
}

bool
DataScalarNode::canAcceptFetch(Addr line) const
{
    return !hardBshr_ || isLocal(line) || bshr_.canAccept(line);
}

void
DataScalarNode::traceEvent(Cycle now, TraceEventKind kind,
                           Addr line) const
{
    if (trace_)
        trace_->event({id_, now, kind, line});
}

void
DataScalarNode::buildStats(stats::Snapshot &snap) const
{
    const ooo::CoreStats &cs = core_.coreStats();
    const BshrStats &bs = bshr_.bshrStats();
    std::string key = "node" + std::to_string(id_);
    stats::Snapshot::GroupEntry &g = snap.addGroup(key, key + ":");
    auto line = [&snap, &g](const char *name, std::uint64_t v,
                            const char *desc) {
        snap.addCounter(g, name, v, desc);
    };
    line("committed", cs.committed, "instructions committed");
    line("loads", cs.loads, "loads committed");
    line("stores", cs.stores, "stores committed");
    line("load_issue_misses", cs.loadIssueMisses,
         "issue-time L1D misses (DCUB fetches)");
    line("canonical_load_misses", cs.canonicalLoadMisses,
         "commit-time (canonical) load misses");
    line("false_hits", cs.falseHits,
         "issue hit but canonical miss");
    line("false_misses", cs.falseMisses,
         "issue miss but canonical hit");
    line("unclaimed_repairs", cs.unclaimedRepairs,
         "canonical misses with no local fetch");
    line("store_commit_misses", cs.storeCommitMisses,
         "stores missing at commit");
    line("dirty_writebacks", cs.dirtyWriteBacks,
         "dirty victims evicted");
    line("icache_misses", cs.icacheMisses, "instruction-line fills");
    line("owner_broadcasts", stats_.ownerBroadcasts,
         "ESP broadcasts sent at issue");
    line("reparative_broadcasts", stats_.reparativeBroadcasts,
         "late broadcasts sent at commit");
    line("remote_fetches", stats_.remoteFetches,
         "fetches of unowned communicated lines");
    line("dropped_writebacks", stats_.droppedWriteBacks,
         "write-backs completed by another owner");
    line("dropped_store_writes", stats_.droppedStoreWrites,
         "store-miss writes completed elsewhere");
    line("bshr_waiter_allocs", bs.waiterAllocs,
         "misses that awaited a broadcast");
    line("bshr_buffered_hits", bs.bufferedHits,
         "data already waiting in the BSHR");
    line("bshr_squashes", bs.squashes, "squashed BSHR entries");
    line("bshr_max_occupancy", bs.maxOccupancy,
         "peak BSHR entries in use");
    if (rerequestTimeout_ > 0) {
        line("rerequests_sent", stats_.rerequestsSent,
             "recovery re-requests issued");
        line("recovery_broadcasts", stats_.recoveryBroadcasts,
             "re-requests answered as owner");
    }
    if (hardBshr_) {
        line("bshr_full_drops", bs.fullDrops,
             "broadcasts refused by the full bank");
        line("backend_stall_events", cs.backendStallEvents,
             "loads stalled on BSHR flow control");
    }
}

void
DataScalarNode::dumpStats(std::ostream &os) const
{
    stats::Snapshot snap;
    buildStats(snap);
    snap.dump(os);
}

void
DataScalarNode::watchdogDump(std::ostream &os, Cycle now) const
{
    os << "node " << id_ << ": committed "
       << core_.coreStats().committed << ", window "
       << core_.windowSize() << " uops, done "
       << (core_.done() ? 1 : 0) << '\n';
    auto entries = bshr_.entries();
    os << "  bshr: " << bshr_.occupancy() << " occupied, "
       << entries.size() << " lines\n";
    for (const auto &e : entries) {
        os << "    line 0x" << std::hex << e.line << std::dec << ": "
           << e.waiters << " waiters, " << e.buffered << " buffered, "
           << e.pendingSquashes << " pending squashes";
        if (e.waiters > 0) {
            os << ", oldest waiter age "
               << (now >= e.firstWaitAt ? now - e.firstWaitAt : 0);
        }
        os << '\n';
    }
    for (const auto &[line, st] : rerequests_) {
        os << "    rerequest 0x" << std::hex << line << std::dec
           << ": " << st.attempts << " attempts, next at cycle ";
        if (st.nextAt == cycleMax)
            os << "never";
        else
            os << st.nextAt;
        os << '\n';
    }
}

} // namespace core
} // namespace dscalar
