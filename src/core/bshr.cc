#include "core/bshr.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/protocol_mutation.hh"

namespace dscalar {
namespace core {

void
Bshr::bumpOccupancy(int delta)
{
    if (delta > 0) {
        occupancy_ += static_cast<std::size_t>(delta);
        stats_.maxOccupancy =
            std::max<std::uint64_t>(stats_.maxOccupancy, occupancy_);
        if (occupancy_ > capacity_)
            ++stats_.overflowEvents;
    } else {
        panic_if(occupancy_ < static_cast<std::size_t>(-delta),
                 "BSHR occupancy underflow");
        occupancy_ -= static_cast<std::size_t>(-delta);
    }
}

void
Bshr::eraseIfIdle(Addr line)
{
    auto it = lines_.find(line);
    if (it != lines_.end() && it->second.idle())
        lines_.erase(it);
}

Bshr::Lookup
Bshr::requestLine(Addr line, Cycle now, Cycle &ready_at)
{
    LineState &ls = lines_[line];
    if (ls.buffered > 0) {
        if (activeProtocolMutation() !=
            ProtocolMutation::BufferedHitKeepsData) {
            --ls.buffered;
            bumpOccupancy(-1);
        }
        ++stats_.bufferedHits;
        ready_at = now + latency_;
        eraseIfIdle(line);
        return Lookup::FoundBuffered;
    }
    if (ls.waiters == 0)
        ls.firstWaitAt = now;
    ++ls.waiters;
    bumpOccupancy(+1);
    ++stats_.waiterAllocs;
    return Lookup::Waiting;
}

Bshr::Deliver
Bshr::deliver(Addr line, Cycle now, Cycle &ready_at)
{
    ++stats_.deliveries;
    LineState &ls = lines_[line];
    if (ls.pendingSquashes > 0) {
        --ls.pendingSquashes;
        ++stats_.squashes;
        if (activeProtocolMutation() ==
            ProtocolMutation::DeliverSquashBuffers) {
            ++ls.buffered;
            bumpOccupancy(+1);
        }
        eraseIfIdle(line);
        return Deliver::Squashed;
    }
    if (ls.waiters > 0) {
        --ls.waiters;
        bumpOccupancy(-1);
        ++stats_.wokenWaiters;
        if (ls.waiters > 0)
            ls.firstWaitAt = now; // remaining waiters' age restarts
        ready_at = now + latency_;
        eraseIfIdle(line);
        return Deliver::WokeWaiter;
    }
    if (hard_ && occupancy_ >= capacity_) {
        // Full bank, nothing to consume the data: refuse to buffer.
        // The line is recoverable — a node that later misses on it
        // re-requests it from the owner.
        ++stats_.fullDrops;
        eraseIfIdle(line);
        return Deliver::DroppedFull;
    }
    ++ls.buffered;
    bumpOccupancy(+1);
    ++stats_.buffered;
    return Deliver::Buffered;
}

bool
Bshr::canAccept(Addr line) const
{
    if (!hard_ || occupancy_ < capacity_)
        return true;
    auto it = lines_.find(line);
    return it != lines_.end() && it->second.buffered > 0;
}

unsigned
Bshr::waiterCount(Addr line) const
{
    auto it = lines_.find(line);
    return it == lines_.end() ? 0 : it->second.waiters;
}

std::vector<BshrEntryInfo>
Bshr::entries() const
{
    std::vector<BshrEntryInfo> out;
    out.reserve(lines_.size());
    for (const auto &[line, ls] : lines_) {
        out.push_back(BshrEntryInfo{line, ls.waiters, ls.buffered,
                                    ls.pendingSquashes,
                                    ls.firstWaitAt});
    }
    std::sort(out.begin(), out.end(),
              [](const BshrEntryInfo &a, const BshrEntryInfo &b) {
                  return a.line < b.line;
              });
    return out;
}

bool
Bshr::registerSquash(Addr line)
{
    LineState &ls = lines_[line];
    if (ls.buffered > 0) {
        --ls.buffered;
        bumpOccupancy(-1);
        ++stats_.squashes;
        eraseIfIdle(line);
        return true;
    }
    if (activeProtocolMutation() !=
        ProtocolMutation::SquashPendingLost)
        ++ls.pendingSquashes;
    eraseIfIdle(line);
    return false;
}

bool
Bshr::drained() const
{
    for (const auto &[line, ls] : lines_)
        if (!ls.idle())
            return false;
    return true;
}

} // namespace core
} // namespace dscalar
