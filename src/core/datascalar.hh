/**
 * @file
 * The complete DataScalar machine: N processor/memory nodes running
 * the same program asynchronously (SPSD), connected by a global
 * broadcast bus. The simulator switches contexts each cycle — cycle
 * n is simulated for all nodes before cycle n+1 for any node,
 * exactly as the paper's modified SimpleScalar did (Section 4.2).
 */

#ifndef DSCALAR_CORE_DATASCALAR_HH
#define DSCALAR_CORE_DATASCALAR_HH

#include <memory>
#include <ostream>
#include <queue>
#include <vector>

#include "common/trace.hh"
#include "core/node.hh"
#include "core/sim_config.hh"
#include "func/func_sim.hh"
#include "func/inst_trace.hh"
#include "interconnect/bus.hh"
#include "interconnect/fault_model.hh"
#include "mem/page_table.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "ooo/oracle_stream.hh"
#include "prog/program.hh"
#include "stats/snapshot.hh"

namespace dscalar {
namespace core {

/** A multi-node DataScalar timing simulation. */
class DataScalarSystem : public BroadcastPort
{
  public:
    /**
     * @param trace optional captured dynamic stream: when non-null
     *        the run replays it instead of executing the program
     *        functionally (byte-identical results, see
     *        driver::TraceCache); when null a private FuncSim
     *        oracle produces the stream live.
     */
    DataScalarSystem(const prog::Program &program, const SimConfig &config,
                     mem::PageTable ptable,
                     std::shared_ptr<const func::InstTrace> trace =
                         nullptr);

    /**
     * Run to completion (or the configured instruction budget).
     *
     * With SimConfig::tickThreads resolved above 1 the nodes tick
     * concurrently in conservative windows bounded by the minimum
     * cross-node delivery latency; results — cycle counts, stats,
     * retirement output, trace-event streams, sampler timelines —
     * are byte-identical to the serial loop (see docs/PERF.md and
     * tests/test_parallel_tick.cc).
     */
    RunResult run();

    unsigned numNodes() const { return config_.numNodes; }
    const DataScalarNode &node(NodeId id) const { return *nodes_.at(id); }
    const interconnect::Bus &bus() const { return bus_; }
    const interconnect::Ring &ring() const { return ring_; }
    const interconnect::FaultModel &faultModel() const { return faults_; }

    /** Pages held in node @p id's local memory (owned + replicated),
     *  the per-node capacity an IRAM part would need. */
    std::size_t localPageCount(NodeId id) const;
    /** The live functional oracle; only valid when not replaying. */
    const func::FuncSim &
    oracle() const
    {
        panic_if(!oracle_, "trace-replay run has no live oracle");
        return *oracle_;
    }
    /** Program output (Print* syscalls) of the executed prefix,
     *  regardless of backend. */
    const std::string &
    output() const
    {
        return oracle_ ? oracle_->output() : replayOutput_;
    }
    const mem::PageTable &pageTable() const { return ptable_; }

    /**
     * End-of-run protocol invariant: every broadcast was consumed —
     * no waiter, buffered line, or pending squash remains in any
     * BSHR, and no delivery is in flight.
     *
     * Holds only on a reliable medium. Injected faults and hard
     * BSHR capacity deliberately break exactly-once delivery, so
     * benign residue (a stranded pending squash, an unconsumed
     * duplicate) is expected on such runs; completion there means
     * every core committed and no waiter remains.
     */
    bool protocolDrained() const;

    /** Cycle the next in-flight broadcast lands at a receiver, or
     *  cycleMax when none is in flight. */
    Cycle
    nextDeliveryCycle() const
    {
        return deliveries_.empty() ? cycleMax : deliveries_.top().at;
    }

    /**
     * Emit typed protocol events (per-node, core disparity, and
     * fault events) to exactly @p sink, detaching any sinks attached
     * earlier (historically this replacement was silent; use
     * addTraceSink to fan out instead); nullptr disables tracing.
     */
    void setTraceSink(TraceSink *sink);

    /** Attach @p sink IN ADDITION to any already attached (text log,
     *  Perfetto exporter, and flight recorder can coexist). */
    void addTraceSink(TraceSink *sink);

    /**
     * Register @p sampler's timeline columns (per-node commit rate /
     * BSHR occupancy / DCUB depth, bus occupancy, leading-node id)
     * and advance it from the run loop; nullptr detaches. Sampling
     * only reads state — cycle counts and the retirement stream are
     * unchanged (locked by tests/test_obs_sampler.cc).
     */
    void setSampler(obs::Sampler *sampler);

    /**
     * Attach a wall-clock phase profiler; nullptr (the default)
     * costs nothing on the run loop. The run loop then attributes
     * its wall time to named phases via @p prof's lap() accumulators
     * — serial: delivery / recovery / tick / bookkeeping; parallel:
     * setup / delivery / oracle_extend / tick / barrier /
     * bookkeeping — and snapshotStats() appends them as the
     * `profile` group (`phase_<name>_us` plus an independently
     * measured `total_us`). Wall-clock only: simulated results are
     * byte-identical with or without a profiler (locked by
     * tests/test_obs_span.cc).
     */
    void setProfiler(obs::SpanRecorder *prof) { prof_ = prof; }

    /** Write a gem5-style stats dump for the whole system. */
    void dumpStats(std::ostream &os) const;

    /** Build the full stat snapshot (group "system" + one group per
     *  node); dumpStats and the JSON export render from this. */
    std::shared_ptr<const stats::Snapshot> snapshotStats() const;

    /** Structured deadlock diagnostics: per-node pipeline heads,
     *  BSHR contents with ages, and in-flight messages. Written to
     *  stderr automatically when the watchdog fires. */
    void watchdogDump(std::ostream &os, Cycle now) const;

    // BroadcastPort ---------------------------------------------------
    void broadcast(NodeId src, Addr line, interconnect::MsgKind kind,
                   Cycle ready) override;

  private:
    struct Delivery
    {
        Cycle at;
        std::uint64_t order; ///< tie-break for determinism
        NodeId src;
        Addr line;
        interconnect::MsgKind kind = interconnect::MsgKind::Broadcast;
        /** Single receiver (ring), or all non-src nodes (bus). */
        bool targeted = false;
        NodeId target = 0;
        bool
        operator>(const Delivery &other) const
        {
            if (at != other.at)
                return at > other.at;
            return order > other.order;
        }
    };

    /** Per-run state of the parallel (windowed) loop; see the .cc. */
    struct ParallelWindow;

    /** The pre-existing serial run loop (tickThreads <= 1). */
    RunResult runSerial();
    /** Conservative-window parallel loop on @p threads workers. */
    RunResult runParallel(unsigned threads);
    /** Assemble the RunResult once the final cycle is known. */
    RunResult finishRun(Cycle final_cycle, std::uint64_t loop_ticks);
    /** Serial transmit path of broadcast(): puts the message on the
     *  interconnect immediately and enqueues its deliveries. */
    void broadcastNow(NodeId src, Addr line, interconnect::MsgKind kind,
                      Cycle ready);

    SimConfig config_;
    std::unique_ptr<func::FuncSim> oracle_; ///< null when replaying
    std::string replayOutput_;
    ooo::OracleStream stream_;
    mem::PageTable ptable_;
    interconnect::Bus bus_;
    interconnect::Ring ring_;
    interconnect::FaultModel faults_;
    bool recoveryActive_ = false;
    std::vector<std::unique_ptr<DataScalarNode>> nodes_;
    std::priority_queue<Delivery, std::vector<Delivery>,
                        std::greater<Delivery>>
        deliveries_;
    std::uint64_t deliveryOrder_ = 0;
    bool ran_ = false;
    RunResult lastResult_;
    /** Owned fan-out for attached trace sinks (empty = tracing off). */
    TeeTraceSink tee_;
    obs::Sampler *sampler_ = nullptr;
    obs::SpanRecorder *prof_ = nullptr;
    /** Recorder-epoch stamps bracketing the run loop (profile group's
     *  total_us; phases must sum to it, docs/OBSERVABILITY.md). */
    std::uint64_t profStartNs_ = 0;
    std::uint64_t profEndNs_ = 0;
    /** Non-null only while worker threads are inside a parallel
     *  window: broadcast() then buffers the send per source node
     *  instead of transmitting, and the barrier replays the buffers
     *  in the serial loop's order. */
    ParallelWindow *pwin_ = nullptr;

    /** Point nodes and the fault model at the current effective
     *  sink (&tee_, or nullptr when no sink is attached). */
    void applyTraceSinks();
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_DATASCALAR_HH
