/**
 * @file
 * Protocol-mutation testing hook.
 *
 * A ProtocolMutation is one deliberately planted single-line bug in
 * the ESP/BSHR consume path, switchable at runtime. The concrete
 * BSHR (core/bshr.cc) and the abstract model checker
 * (check/model.cc) both honour the same enum, so the mutation-
 * sensitivity tests can assert that exhaustive enumeration *and*
 * differential fuzzing each catch every planted bug — and that a
 * counterexample found on the abstract model reproduces on the
 * concrete simulator.
 *
 * Off (None) by default; nothing in the simulator's normal
 * configuration space ever enables a mutation. The hook is a relaxed
 * atomic so oracle runs under TSan stay clean; the cost on the BSHR
 * paths (one relaxed load per consume operation) is noise.
 */

#ifndef DSCALAR_CORE_PROTOCOL_MUTATION_HH
#define DSCALAR_CORE_PROTOCOL_MUTATION_HH

#include <cstdint>
#include <string>

namespace dscalar {
namespace core {

/** Planted single-line protocol bugs (testing hook, default None). */
enum class ProtocolMutation : std::uint8_t {
    None = 0,
    /**
     * The PR 4 squash-condition bug: registerSquash with nothing
     * buffered forgets to record the pending squash, so the episode's
     * broadcast later arrives unclaimed and parks in the buffer
     * forever — strict-drain and broadcast-conservation violations.
     */
    SquashPendingLost,
    /**
     * A buffered hit returns the data without consuming the entry:
     * the broadcast is double-counted as consumed and the buffer
     * never drains.
     */
    BufferedHitKeepsData,
    /**
     * A delivery consumed by a pending squash also buffers the data
     * (missing early-out), leaving residue no local request ever
     * claims.
     */
    DeliverSquashBuffers,
};

/** Number of ProtocolMutation values, None included. */
inline constexpr unsigned numProtocolMutations = 4;

/** Stable lower-case name of @p m (repro keys, CLI flags). */
const char *protocolMutationName(ProtocolMutation m);

/** Parse a mutation name. @return false on unknown input. */
bool parseProtocolMutation(const std::string &name,
                           ProtocolMutation &out);

/** Currently active mutation (None unless a test planted one). */
ProtocolMutation activeProtocolMutation();

/** Plant @p m process-wide. Testing hook — never set by any
 *  simulator configuration path. */
void setProtocolMutation(ProtocolMutation m);

/** RAII planting: active for the scope's lifetime, restored after. */
class ScopedProtocolMutation
{
  public:
    explicit ScopedProtocolMutation(ProtocolMutation m)
        : previous_(activeProtocolMutation())
    {
        setProtocolMutation(m);
    }
    ~ScopedProtocolMutation() { setProtocolMutation(previous_); }

    ScopedProtocolMutation(const ScopedProtocolMutation &) = delete;
    ScopedProtocolMutation &
    operator=(const ScopedProtocolMutation &) = delete;

  private:
    ProtocolMutation previous_;
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_PROTOCOL_MUTATION_HH
