/**
 * @file
 * Top-level configuration shared by the DataScalar system and the
 * baseline systems. Defaults reproduce the paper's Section 4.2
 * parameters.
 */

#ifndef DSCALAR_CORE_SIM_CONFIG_HH
#define DSCALAR_CORE_SIM_CONFIG_HH

#include <memory>

#include "common/types.hh"
#include "interconnect/bus.hh"
#include "interconnect/fault_model.hh"
#include "interconnect/ring.hh"
#include "mem/main_memory.hh"
#include "ooo/core.hh"

namespace dscalar {

namespace stats {
class Snapshot;
} // namespace stats

namespace core {

/** Global-interconnect topology for DataScalar broadcasts. */
enum class InterconnectKind : std::uint8_t {
    Bus, ///< the paper's evaluated configuration
    Ring ///< the paper's envisioned SCI-style ring (Section 4.4)
};

/** Whole-system parameters. */
struct SimConfig
{
    ooo::CoreParams core;
    mem::MainMemoryParams mem;       ///< per-node on-chip memory
    interconnect::BusParams bus;
    InterconnectKind interconnect = InterconnectKind::Bus;
    interconnect::RingParams ring;   ///< used when interconnect==Ring
    unsigned numNodes = 2;
    Cycle bshrLatency = 1;           ///< BSHR access time in cycles
    /** Architected BSHR capacity; the model is soft by default
     *  (occupancy above this is reported, not enforced); see
     *  @ref bshrHardCapacity. */
    unsigned bshrCapacity = 128;
    /**
     * Enforce bshrCapacity: a load that would allocate a BSHR waiter
     * while the bank is full stalls at issue (NACK-free flow
     * control; the oldest instruction bypasses the check so forward
     * progress is never lost), and an arriving broadcast that would
     * have to buffer in a full bank is dropped and recovered via
     * re-request. Requires rerequestTimeout > 0.
     */
    bool bshrHardCapacity = false;
    /** Interconnect fault injection (all-off defaults = the paper's
     *  perfectly reliable medium). */
    interconnect::FaultParams fault;
    /**
     * Re-request recovery: a node whose BSHR waiter has seen no data
     * for this many cycles sends MsgKind::Rerequest to the owner,
     * which re-broadcasts the line. Retries back off exponentially
     * (doubling, capped at rerequestBackoffCap) up to
     * rerequestMaxRetries attempts. 0 disables recovery (the paper's
     * protocol, where a lost broadcast is fatal).
     */
    Cycle rerequestTimeout = 0;
    /** Backoff ceiling; 0 = 8 * rerequestTimeout. */
    Cycle rerequestBackoffCap = 0;
    /** Give up (watchdog-style panic) after this many re-requests
     *  for one line. */
    unsigned rerequestMaxRetries = 16;
    /** Truncate runs after this many instructions (0 = completion). */
    InstSeq maxInsts = 0;
    /**
     * Per-node on-chip memory capacity in pages (0 = unchecked).
     * The DataScalar premise is a finite per-node memory holding
     * 1/N of the program plus every replicated page; exceeding it
     * is a configuration error.
     */
    std::size_t memCapacityPages = 0;
    /** Abort if no node commits for this many cycles (a protocol
     *  deadlock would otherwise hang silently). */
    Cycle watchdogCycles = 5'000'000;
    /**
     * Event-driven run loops: fast-forward the clock to the next
     * cycle at which any node, delivery, or the watchdog can act,
     * instead of stepping one cycle at a time. Simulated cycle
     * counts and event statistics are identical either way (asserted
     * by test_cycle_skip); disable to force the reference
     * single-cycle-stepping loop. See docs/PERF.md.
     */
    bool eventDriven = true;
    /**
     * Worker threads ticking nodes concurrently inside one
     * simulation (conservative-window PDES; see docs/PERF.md).
     * 1 = today's serial run loop, verbatim. 0 = hardware
     * concurrency clamped to the node count. Values > 1 tick all
     * nodes in bounded windows no wider than the minimum cross-node
     * delivery latency, exchanging interconnect messages only at
     * window barriers; dumpStats(), the retirement output, and
     * sampler timelines are byte-identical to the serial loop at
     * any thread count (asserted by test_parallel_tick).
     */
    unsigned tickThreads = 1;
};

/** Aggregate outcome of one timing run. */
struct RunResult
{
    Cycle cycles = 0;
    InstSeq instructions = 0;
    double ipc = 0.0;
    /** Run-loop iterations actually executed: equals @ref cycles when
     *  single-stepping; smaller under event-driven skipping. Purely
     *  diagnostic — excluded from equivalence comparisons. */
    std::uint64_t loopTicks = 0;
    /** Full end-of-run stat snapshot (every sweep point carries one);
     *  renders as text via Snapshot::dump or JSON via
     *  stats::JsonWriter. */
    std::shared_ptr<const stats::Snapshot> stats;
};

} // namespace core
} // namespace dscalar

#endif // DSCALAR_CORE_SIM_CONFIG_HH
