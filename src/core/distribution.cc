#include "core/distribution.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "common/logging.hh"

namespace dscalar {
namespace core {

mem::PageTable
buildPageTable(const prog::Program &program,
               const DistributionConfig &config, const PageHeat *heat,
               ReplicationReport *report)
{
    fatal_if(config.numNodes == 0, "need at least one node");
    fatal_if(config.blockPages == 0, "block size must be >= 1 page");
    fatal_if(config.replicatedDataPages > 0 && heat == nullptr,
             "hot-page replication requires a heat profile");

    mem::PageTable table(config.numNodes);
    std::vector<Addr> pages = program.touchedPages();

    std::set<Addr> replicated;

    for (Addr page : pages) {
        if (config.replicateText &&
            prog::segmentOf(page) == prog::Segment::Text) {
            replicated.insert(page);
        }
    }

    if (config.replicatedDataPages > 0) {
        // Hottest pages first (count, then address for determinism
        // on ties). Text pages join the ranking when they are not
        // already replicated wholesale -- the paper's Table 2 setup
        // replicates the most heavily accessed pages of any segment.
        std::vector<std::pair<std::uint64_t, Addr>> ranked;
        for (Addr page : pages) {
            if (config.replicateText &&
                prog::segmentOf(page) == prog::Segment::Text)
                continue;
            auto it = heat->find(page);
            std::uint64_t count = it == heat->end() ? 0 : it->second;
            ranked.emplace_back(count, page);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        for (std::size_t i = 0;
             i < ranked.size() && i < config.replicatedDataPages; ++i) {
            replicated.insert(ranked[i].second);
        }
    }

    if (report) {
        *report = ReplicationReport{};
        for (Addr page : replicated) {
            switch (prog::segmentOf(page)) {
              case prog::Segment::Text: ++report->text; break;
              case prog::Segment::Global: ++report->global; break;
              case prog::Segment::Heap: ++report->heap; break;
              case prog::Segment::Stack: ++report->stack; break;
              default: break;
            }
        }
    }

    // Distribute the communicated remainder round-robin in blocks of
    // consecutive pages (consecutive within the touched-page list, so
    // a block spans contiguous parts of one segment).
    NodeId node = 0;
    unsigned in_block = 0;
    for (Addr page : pages) {
        if (replicated.count(page)) {
            table.setReplicated(page);
            continue;
        }
        table.setOwned(page, node);
        if (++in_block == config.blockPages) {
            in_block = 0;
            node = (node + 1) % config.numNodes;
        }
    }
    return table;
}

} // namespace core
} // namespace dscalar
