#include "core/protocol_mutation.hh"

#include <atomic>

namespace dscalar {
namespace core {

namespace {

std::atomic<ProtocolMutation> g_mutation{ProtocolMutation::None};

constexpr const char *kNames[numProtocolMutations] = {
    "none",
    "squash-pending-lost",
    "buffered-hit-keeps-data",
    "deliver-squash-buffers",
};

} // namespace

const char *
protocolMutationName(ProtocolMutation m)
{
    auto i = static_cast<unsigned>(m);
    return i < numProtocolMutations ? kNames[i] : "?";
}

bool
parseProtocolMutation(const std::string &name, ProtocolMutation &out)
{
    for (unsigned i = 0; i < numProtocolMutations; ++i) {
        if (name == kNames[i]) {
            out = static_cast<ProtocolMutation>(i);
            return true;
        }
    }
    return false;
}

ProtocolMutation
activeProtocolMutation()
{
    return g_mutation.load(std::memory_order_relaxed);
}

void
setProtocolMutation(ProtocolMutation m)
{
    g_mutation.store(m, std::memory_order_relaxed);
}

} // namespace core
} // namespace dscalar
