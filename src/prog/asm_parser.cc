#include "prog/asm_parser.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace prog {

namespace {

/** Register-name table: r0..r31 plus conventional aliases. */
int
regNumber(const std::string &tok)
{
    static const std::map<std::string, int> aliases = {
        {"zero", 0}, {"at", 1},  {"v0", 2},  {"v1", 3},  {"a0", 4},
        {"a1", 5},   {"a2", 6},  {"a3", 7},  {"t0", 8},  {"t1", 9},
        {"t2", 10},  {"t3", 11}, {"t4", 12}, {"t5", 13}, {"t6", 14},
        {"t7", 15},  {"s0", 16}, {"s1", 17}, {"s2", 18}, {"s3", 19},
        {"s4", 20},  {"s5", 21}, {"s6", 22}, {"s7", 23}, {"t8", 24},
        {"t9", 25},  {"k0", 26}, {"k1", 27}, {"gp", 28}, {"sp", 29},
        {"fp", 30},  {"ra", 31},
    };
    auto it = aliases.find(tok);
    if (it != aliases.end())
        return it->second;
    if (tok.size() >= 2 && tok[0] == 'r') {
        char *end = nullptr;
        long v = std::strtol(tok.c_str() + 1, &end, 10);
        if (end && *end == '\0' && v >= 0 && v < 32)
            return static_cast<int>(v);
    }
    return -1;
}

/** One parsed line: mnemonic + raw operand tokens. */
struct Statement
{
    unsigned lineNo = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
};

class Parser
{
  public:
    Parser(const std::string &source, const std::string &name)
        : program_(), asmr_(program_)
    {
        program_.name = name;
        std::istringstream in(source);
        std::string line;
        unsigned line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            parseLine(line, line_no);
        }
        asmr_.finalize();
    }

    Program take() { return std::move(program_); }

  private:
    [[noreturn]] void
    bad(unsigned line_no, const std::string &msg) const
    {
        fatal("asm line %u: %s", line_no, msg.c_str());
    }

    static std::vector<std::string>
    tokenize(const std::string &text)
    {
        std::vector<std::string> toks;
        std::string cur;
        for (char c : text) {
            if (std::isspace(static_cast<unsigned char>(c)) ||
                c == ',') {
                if (!cur.empty()) {
                    toks.push_back(cur);
                    cur.clear();
                }
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            toks.push_back(cur);
        return toks;
    }

    RegIndex
    reg(const std::string &tok, unsigned line_no) const
    {
        int r = regNumber(tok);
        if (r < 0)
            bad(line_no, "bad register '" + tok + "'");
        return static_cast<RegIndex>(r);
    }

    std::int64_t
    integer(const std::string &tok, unsigned line_no) const
    {
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 0);
        if (!end || *end != '\0')
            bad(line_no, "bad integer '" + tok + "'");
        return v;
    }

    /** Symbol, optionally with +offset. */
    Addr
    symbol(const std::string &tok, unsigned line_no) const
    {
        std::string name = tok;
        Addr off = 0;
        auto plus = tok.find('+');
        if (plus != std::string::npos) {
            name = tok.substr(0, plus);
            char *end = nullptr;
            off = std::strtoull(tok.c_str() + plus + 1, &end, 0);
        }
        auto it = symbols_.find(name);
        if (it == symbols_.end())
            bad(line_no, "unknown symbol '" + name + "'");
        return it->second + off;
    }

    /** Parse "off(base)". */
    void
    memOperand(const std::string &tok, unsigned line_no,
               std::int32_t &off, RegIndex &base) const
    {
        auto open = tok.find('(');
        auto close = tok.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            bad(line_no, "bad memory operand '" + tok + "'");
        std::string off_str = tok.substr(0, open);
        off = off_str.empty()
                  ? 0
                  : static_cast<std::int32_t>(
                        integer(off_str, line_no));
        base = reg(tok.substr(open + 1, close - open - 1), line_no);
    }

    void
    parseLine(std::string line, unsigned line_no)
    {
        // Strip comments.
        for (char marker : {';', '#'}) {
            auto pos = line.find(marker);
            if (pos != std::string::npos)
                line.resize(pos);
        }
        // Peel leading labels ("name:").
        for (;;) {
            std::size_t i = 0;
            while (i < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[i])))
                ++i;
            std::size_t j = i;
            while (j < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        line[j])) ||
                    line[j] == '_'))
                ++j;
            if (j > i && j < line.size() && line[j] == ':') {
                asmr_.label(line.substr(i, j - i));
                line = line.substr(j + 1);
                continue;
            }
            break;
        }

        std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            return;
        Statement st;
        st.lineNo = line_no;
        st.mnemonic = toks[0];
        st.operands.assign(toks.begin() + 1, toks.end());
        emit(st);
    }

    void
    require(const Statement &st, std::size_t count) const
    {
        if (st.operands.size() != count)
            bad(st.lineNo, st.mnemonic + " expects " +
                               std::to_string(count) + " operands");
    }

    void
    emit(const Statement &st)
    {
        const auto &m = st.mnemonic;
        unsigned n = st.lineNo;

        // Directives --------------------------------------------------
        if (m == ".global" || m == ".heap") {
            require(st, 2);
            std::uint64_t size = static_cast<std::uint64_t>(
                integer(st.operands[1], n));
            Addr base = m == ".global"
                            ? program_.allocGlobal(size)
                            : program_.allocHeap(size);
            symbols_[st.operands[0]] = base;
            return;
        }
        if (m == ".word" || m == ".dword" || m == ".double") {
            require(st, 3);
            Addr addr = symbol(st.operands[0], n) +
                        static_cast<Addr>(
                            integer(st.operands[1], n));
            if (m == ".word") {
                program_.poke32(addr, static_cast<std::uint32_t>(
                                          integer(st.operands[2], n)));
            } else if (m == ".dword") {
                program_.poke64(addr, static_cast<std::uint64_t>(
                                          integer(st.operands[2], n)));
            } else {
                program_.pokeDouble(addr,
                                    std::stod(st.operands[2]));
            }
            return;
        }
        if (m == ".stack") {
            require(st, 1);
            program_.stackSize = static_cast<Addr>(
                integer(st.operands[0], n));
            return;
        }
        if (m == ".text") {
            return; // accepted for familiarity; no effect
        }

        // Pseudo-instructions ----------------------------------------
        if (m == "li") {
            require(st, 2);
            asmr_.li(reg(st.operands[0], n),
                     integer(st.operands[1], n));
            return;
        }
        if (m == "la") {
            require(st, 2);
            asmr_.la(reg(st.operands[0], n),
                     symbol(st.operands[1], n));
            return;
        }
        if (m == "move") {
            require(st, 2);
            asmr_.move(reg(st.operands[0], n),
                       reg(st.operands[1], n));
            return;
        }

        // Real instructions, dispatched by opcode metadata -----------
        int opval = -1;
        for (int i = 0;
             i < static_cast<int>(isa::Opcode::NUM_OPCODES); ++i) {
            if (m == isa::opInfo(static_cast<isa::Opcode>(i))
                         .mnemonic) {
                opval = i;
                break;
            }
        }
        if (opval < 0)
            bad(n, "unknown mnemonic '" + m + "'");
        auto op = static_cast<isa::Opcode>(opval);

        isa::Instruction inst;
        inst.op = op;
        switch (isa::opInfo(op).format) {
          case isa::Format::None:
            require(st, 0);
            break;
          case isa::Format::RRR:
            require(st, 3);
            inst.rd = reg(st.operands[0], n);
            inst.rs = reg(st.operands[1], n);
            inst.rt = reg(st.operands[2], n);
            break;
          case isa::Format::RRI:
            if (op == isa::Opcode::CVTIF ||
                op == isa::Opcode::CVTFI) {
                require(st, 2);
                inst.rd = reg(st.operands[0], n);
                inst.rs = reg(st.operands[1], n);
            } else {
                require(st, 3);
                inst.rd = reg(st.operands[0], n);
                inst.rs = reg(st.operands[1], n);
                inst.imm = static_cast<std::int32_t>(
                    integer(st.operands[2], n));
            }
            break;
          case isa::Format::RI:
            require(st, 2);
            inst.rd = reg(st.operands[0], n);
            inst.imm = static_cast<std::int32_t>(
                integer(st.operands[1], n));
            break;
          case isa::Format::Mem: {
            require(st, 2);
            std::int32_t off = 0;
            RegIndex base = 0;
            memOperand(st.operands[1], n, off, base);
            isa::Instruction tmp;
            tmp.op = op;
            if (tmp.isLoad())
                inst.rd = reg(st.operands[0], n);
            else
                inst.rt = reg(st.operands[0], n);
            inst.rs = base;
            inst.imm = off;
            break;
          }
          case isa::Format::Branch: {
            require(st, 3);
            RegIndex rs = reg(st.operands[0], n);
            RegIndex rt = reg(st.operands[1], n);
            // Delegate to the Assembler's label fixups.
            switch (op) {
              case isa::Opcode::BEQ:
                asmr_.beq(rs, rt, st.operands[2]);
                return;
              case isa::Opcode::BNE:
                asmr_.bne(rs, rt, st.operands[2]);
                return;
              case isa::Opcode::BLT:
                asmr_.blt(rs, rt, st.operands[2]);
                return;
              default:
                asmr_.bge(rs, rt, st.operands[2]);
                return;
            }
          }
          case isa::Format::Jump:
            require(st, 1);
            if (op == isa::Opcode::J)
                asmr_.j(st.operands[0]);
            else
                asmr_.jal(st.operands[0]);
            return;
          case isa::Format::JumpReg:
            require(st, 1);
            inst.rs = reg(st.operands[0], n);
            break;
          case isa::Format::Sys:
            require(st, 1);
            inst.imm = static_cast<std::int32_t>(
                integer(st.operands[0], n));
            break;
        }
        asmr_.emit(inst);
    }

    Program program_;
    Assembler asmr_;
    std::map<std::string, Addr> symbols_;
};

} // namespace

Program
assembleSource(const std::string &source, const std::string &name)
{
    Parser parser(source, name);
    return parser.take();
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open assembly file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return assembleSource(buf.str(), path);
}

} // namespace prog
} // namespace dscalar
