/**
 * @file
 * In-C++ assembler DSL used by the synthetic workload builders.
 *
 * Typical use:
 * @code
 *   Program p;
 *   Assembler a(p);
 *   a.label("loop");
 *   a.lw(5, 4, 0);
 *   a.addi(4, 4, 4);
 *   a.bne(4, 6, "loop");
 *   a.halt();
 *   a.finalize();
 * @endcode
 */

#ifndef DSCALAR_PROG_ASSEMBLER_HH
#define DSCALAR_PROG_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "prog/program.hh"

namespace dscalar {
namespace prog {

/** Register-name conventions used by workloads. */
namespace reg {
inline constexpr RegIndex zero = 0;
inline constexpr RegIndex v0 = 2;   ///< results / syscall return
inline constexpr RegIndex a0 = 4;   ///< first argument
inline constexpr RegIndex a1 = 5;
inline constexpr RegIndex a2 = 6;
inline constexpr RegIndex a3 = 7;
inline constexpr RegIndex t0 = 8;   ///< t0..t7 = r8..r15 temporaries
inline constexpr RegIndex t1 = 9;
inline constexpr RegIndex t2 = 10;
inline constexpr RegIndex t3 = 11;
inline constexpr RegIndex t4 = 12;
inline constexpr RegIndex t5 = 13;
inline constexpr RegIndex t6 = 14;
inline constexpr RegIndex t7 = 15;
inline constexpr RegIndex s0 = 16;  ///< s0..s7 = r16..r23 saved
inline constexpr RegIndex s1 = 17;
inline constexpr RegIndex s2 = 18;
inline constexpr RegIndex s3 = 19;
inline constexpr RegIndex s4 = 20;
inline constexpr RegIndex s5 = 21;
inline constexpr RegIndex s6 = 22;
inline constexpr RegIndex s7 = 23;
inline constexpr RegIndex sp = 29;
inline constexpr RegIndex fp = 30;
inline constexpr RegIndex ra = 31;
} // namespace reg

/** Streaming assembler over a Program's text segment. */
class Assembler
{
  public:
    explicit Assembler(Program &prog) : prog_(prog) {}

    /** Address the next emitted instruction will occupy. */
    Addr here() const { return prog_.textLimit(); }

    /** Bind @p name to the current position. */
    void label(const std::string &name);

    /** Create a fresh label name, e.g.\ genLabel("loop") -> "loop_7". */
    std::string genLabel(const std::string &base);

    /** Address of a bound label; fatal if unbound at finalize time. */
    Addr labelAddr(const std::string &name) const;

    /** Emit a raw decoded instruction. */
    Addr emit(const isa::Instruction &inst);

    // Integer ALU ---------------------------------------------------
    void add(RegIndex rd, RegIndex rs, RegIndex rt);
    void sub(RegIndex rd, RegIndex rs, RegIndex rt);
    void mul(RegIndex rd, RegIndex rs, RegIndex rt);
    void div(RegIndex rd, RegIndex rs, RegIndex rt);
    void rem(RegIndex rd, RegIndex rs, RegIndex rt);
    void and_(RegIndex rd, RegIndex rs, RegIndex rt);
    void or_(RegIndex rd, RegIndex rs, RegIndex rt);
    void xor_(RegIndex rd, RegIndex rs, RegIndex rt);
    void sll(RegIndex rd, RegIndex rs, RegIndex rt);
    void srl(RegIndex rd, RegIndex rs, RegIndex rt);
    void sra(RegIndex rd, RegIndex rs, RegIndex rt);
    void slt(RegIndex rd, RegIndex rs, RegIndex rt);
    void sltu(RegIndex rd, RegIndex rs, RegIndex rt);

    void addi(RegIndex rd, RegIndex rs, std::int32_t imm);
    void andi(RegIndex rd, RegIndex rs, std::int32_t imm);
    void ori(RegIndex rd, RegIndex rs, std::int32_t imm);
    void xori(RegIndex rd, RegIndex rs, std::int32_t imm);
    void slli(RegIndex rd, RegIndex rs, std::int32_t imm);
    void srli(RegIndex rd, RegIndex rs, std::int32_t imm);
    void srai(RegIndex rd, RegIndex rs, std::int32_t imm);
    void slti(RegIndex rd, RegIndex rs, std::int32_t imm);
    void lui(RegIndex rd, std::int32_t imm);

    // Floating point ------------------------------------------------
    void fadd(RegIndex rd, RegIndex rs, RegIndex rt);
    void fsub(RegIndex rd, RegIndex rs, RegIndex rt);
    void fmul(RegIndex rd, RegIndex rs, RegIndex rt);
    void fdiv(RegIndex rd, RegIndex rs, RegIndex rt);
    void fslt(RegIndex rd, RegIndex rs, RegIndex rt);
    void cvtif(RegIndex rd, RegIndex rs);
    void cvtfi(RegIndex rd, RegIndex rs);

    // Memory ----------------------------------------------------------
    void lw(RegIndex rd, RegIndex base, std::int32_t off);
    void sw(RegIndex rt, RegIndex base, std::int32_t off);
    void ld(RegIndex rd, RegIndex base, std::int32_t off);
    void sd(RegIndex rt, RegIndex base, std::int32_t off);
    void lbu(RegIndex rd, RegIndex base, std::int32_t off);
    void sb(RegIndex rt, RegIndex base, std::int32_t off);

    // Control ---------------------------------------------------------
    void beq(RegIndex rs, RegIndex rt, const std::string &target);
    void bne(RegIndex rs, RegIndex rt, const std::string &target);
    void blt(RegIndex rs, RegIndex rt, const std::string &target);
    void bge(RegIndex rs, RegIndex rt, const std::string &target);
    void j(const std::string &target);
    void jal(const std::string &target);
    void jr(RegIndex rs);
    void ret() { jr(reg::ra); }

    // System ----------------------------------------------------------
    void syscall(isa::Syscall code);
    void halt();
    void nop();

    // Pseudo-instructions ----------------------------------------------
    /** Load a 32-bit constant (1-2 instructions). */
    void li(RegIndex rd, std::int64_t value);
    /** Load an address constant. */
    void la(RegIndex rd, Addr addr);
    void move(RegIndex rd, RegIndex rs);

    /**
     * Resolve every recorded label reference. Must be called once,
     * after all code is emitted; fatal on undefined labels.
     */
    void finalize();

  private:
    struct Fixup
    {
        std::size_t textIndex;
        std::string label;
        bool isBranch; ///< else absolute jump
    };

    void emitBranch(isa::Opcode op, RegIndex rs, RegIndex rt,
                    const std::string &target);

    Program &prog_;
    std::map<std::string, Addr> labels_;
    std::vector<Fixup> fixups_;
    unsigned labelCounter_ = 0;
    bool finalized_ = false;
};

} // namespace prog
} // namespace dscalar

#endif // DSCALAR_PROG_ASSEMBLER_HH
