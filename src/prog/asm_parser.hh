/**
 * @file
 * Text assembly frontend: parses `.s` source into a Program, so
 * workloads can be written without recompiling the library.
 *
 * Syntax (one statement per line; `;` or `#` start a comment):
 *
 * @code
 *         .global  buf, 8192        ; reserve zeroed global bytes
 *         .heap    nodes, 4096      ; reserve heap bytes
 *         .word    buf, 0, 42       ; poke32 at buf+0
 *         .dword   buf, 8, 99       ; poke64 at buf+8
 *         .double  buf, 16, 2.5     ; IEEE double at buf+16
 *         .stack   65536            ; stack reservation
 *
 *         la    s1, buf             ; pseudo-ops: la, li, move
 *         li    s0, 2048
 * loop:   lw    t0, 0(s1)
 *         add   s2, s2, t0
 *         addi  s1, s1, 4
 *         addi  s0, s0, -1
 *         bne   s0, zero, loop
 *         syscall 1                 ; print r4
 *         halt
 * @endcode
 *
 * Registers are r0..r31 or the conventional aliases (zero, v0,
 * a0-a3, t0-t7, s0-s7, sp, fp, ra). Data symbols must be declared
 * before they are referenced by `la`. Syntax errors are fatal()
 * with the offending line number.
 */

#ifndef DSCALAR_PROG_ASM_PARSER_HH
#define DSCALAR_PROG_ASM_PARSER_HH

#include <string>

#include "prog/program.hh"

namespace dscalar {
namespace prog {

/**
 * Assemble @p source into a fresh Program named @p name.
 * fatal()s with a line number on any syntax error.
 */
Program assembleSource(const std::string &source,
                       const std::string &name = "asm");

/** Assemble the contents of @p path (fatal on I/O failure). */
Program assembleFile(const std::string &path);

} // namespace prog
} // namespace dscalar

#endif // DSCALAR_PROG_ASM_PARSER_HH
