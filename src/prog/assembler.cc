#include "prog/assembler.hh"

#include "common/logging.hh"

namespace dscalar {
namespace prog {

using isa::Instruction;
using isa::Opcode;

void
Assembler::label(const std::string &name)
{
    fatal_if(labels_.count(name), "label '%s' defined twice", name.c_str());
    labels_[name] = here();
}

std::string
Assembler::genLabel(const std::string &base)
{
    return base + "_" + std::to_string(labelCounter_++);
}

Addr
Assembler::labelAddr(const std::string &name) const
{
    auto it = labels_.find(name);
    fatal_if(it == labels_.end(), "label '%s' not defined", name.c_str());
    return it->second;
}

Addr
Assembler::emit(const Instruction &inst)
{
    panic_if(finalized_, "emit after finalize");
    return prog_.appendText(isa::encode(inst));
}

namespace {

Instruction
rrr(Opcode op, RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    return i;
}

Instruction
rri(Opcode op, RegIndex rd, RegIndex rs, std::int32_t imm)
{
    fatal_if(imm < -32768 || imm > 65535,
             "immediate %d out of 16-bit range", imm);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.imm = imm;
    return i;
}

} // namespace

#define DEF_RRR(fn, OP)                                                 \
    void Assembler::fn(RegIndex rd, RegIndex rs, RegIndex rt)           \
    {                                                                   \
        emit(rrr(Opcode::OP, rd, rs, rt));                              \
    }

DEF_RRR(add, ADD)
DEF_RRR(sub, SUB)
DEF_RRR(mul, MUL)
DEF_RRR(div, DIV)
DEF_RRR(rem, REM)
DEF_RRR(and_, AND)
DEF_RRR(or_, OR)
DEF_RRR(xor_, XOR)
DEF_RRR(sll, SLL)
DEF_RRR(srl, SRL)
DEF_RRR(sra, SRA)
DEF_RRR(slt, SLT)
DEF_RRR(sltu, SLTU)
DEF_RRR(fadd, FADD)
DEF_RRR(fsub, FSUB)
DEF_RRR(fmul, FMUL)
DEF_RRR(fdiv, FDIV)
DEF_RRR(fslt, FSLT)

#undef DEF_RRR

#define DEF_RRI(fn, OP)                                                 \
    void Assembler::fn(RegIndex rd, RegIndex rs, std::int32_t imm)      \
    {                                                                   \
        emit(rri(Opcode::OP, rd, rs, imm));                             \
    }

DEF_RRI(addi, ADDI)
DEF_RRI(andi, ANDI)
DEF_RRI(ori, ORI)
DEF_RRI(xori, XORI)
DEF_RRI(slli, SLLI)
DEF_RRI(srli, SRLI)
DEF_RRI(srai, SRAI)
DEF_RRI(slti, SLTI)

#undef DEF_RRI

void
Assembler::lui(RegIndex rd, std::int32_t imm)
{
    Instruction i;
    i.op = Opcode::LUI;
    i.rd = rd;
    i.imm = imm & 0xffff;
    emit(i);
}

void
Assembler::cvtif(RegIndex rd, RegIndex rs)
{
    emit(rri(Opcode::CVTIF, rd, rs, 0));
}

void
Assembler::cvtfi(RegIndex rd, RegIndex rs)
{
    emit(rri(Opcode::CVTFI, rd, rs, 0));
}

namespace {

Instruction
memOp(Opcode op, RegIndex value_or_dest, RegIndex base, std::int32_t off)
{
    fatal_if(off < -32768 || off > 32767, "mem offset %d out of range",
             off);
    Instruction i;
    i.op = op;
    if (i.isLoad())
        i.rd = value_or_dest;
    else
        i.rt = value_or_dest;
    i.rs = base;
    i.imm = off;
    return i;
}

} // namespace

void
Assembler::lw(RegIndex rd, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::LW, rd, base, off));
}

void
Assembler::sw(RegIndex rt, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::SW, rt, base, off));
}

void
Assembler::ld(RegIndex rd, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::LD, rd, base, off));
}

void
Assembler::sd(RegIndex rt, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::SD, rt, base, off));
}

void
Assembler::lbu(RegIndex rd, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::LBU, rd, base, off));
}

void
Assembler::sb(RegIndex rt, RegIndex base, std::int32_t off)
{
    emit(memOp(Opcode::SB, rt, base, off));
}

void
Assembler::emitBranch(Opcode op, RegIndex rs, RegIndex rt,
                      const std::string &target)
{
    Instruction i;
    i.op = op;
    i.rs = rs;
    i.rt = rt;
    i.imm = 0;
    Addr addr = emit(i);
    fixups_.push_back({(addr - prog_.textBaseAddr()) / 4, target, true});
}

void
Assembler::beq(RegIndex rs, RegIndex rt, const std::string &target)
{
    emitBranch(Opcode::BEQ, rs, rt, target);
}

void
Assembler::bne(RegIndex rs, RegIndex rt, const std::string &target)
{
    emitBranch(Opcode::BNE, rs, rt, target);
}

void
Assembler::blt(RegIndex rs, RegIndex rt, const std::string &target)
{
    emitBranch(Opcode::BLT, rs, rt, target);
}

void
Assembler::bge(RegIndex rs, RegIndex rt, const std::string &target)
{
    emitBranch(Opcode::BGE, rs, rt, target);
}

void
Assembler::j(const std::string &target)
{
    Instruction i;
    i.op = Opcode::J;
    Addr addr = emit(i);
    fixups_.push_back({(addr - prog_.textBaseAddr()) / 4, target, false});
}

void
Assembler::jal(const std::string &target)
{
    Instruction i;
    i.op = Opcode::JAL;
    Addr addr = emit(i);
    fixups_.push_back({(addr - prog_.textBaseAddr()) / 4, target, false});
}

void
Assembler::jr(RegIndex rs)
{
    Instruction i;
    i.op = Opcode::JR;
    i.rs = rs;
    emit(i);
}

void
Assembler::syscall(isa::Syscall code)
{
    Instruction i;
    i.op = Opcode::SYSCALL;
    i.imm = static_cast<std::int32_t>(code);
    emit(i);
}

void
Assembler::halt()
{
    Instruction i;
    i.op = Opcode::HALT;
    emit(i);
}

void
Assembler::nop()
{
    emit(Instruction{});
}

void
Assembler::li(RegIndex rd, std::int64_t value)
{
    fatal_if(value < INT32_MIN || value > INT32_MAX,
             "li constant %lld exceeds 32 bits", (long long)value);
    if (value >= -32768 && value <= 32767) {
        addi(rd, reg::zero, static_cast<std::int32_t>(value));
        return;
    }
    auto uval = static_cast<std::uint32_t>(value);
    lui(rd, static_cast<std::int32_t>(uval >> 16));
    if (uval & 0xffff)
        ori(rd, rd, static_cast<std::int32_t>(uval & 0xffff));
}

void
Assembler::la(RegIndex rd, Addr addr)
{
    fatal_if(addr > 0x7fffffffULL, "address 0x%llx exceeds la range",
             (unsigned long long)addr);
    li(rd, static_cast<std::int64_t>(addr));
}

void
Assembler::move(RegIndex rd, RegIndex rs)
{
    add(rd, rs, reg::zero);
}

void
Assembler::finalize()
{
    panic_if(finalized_, "finalize called twice");
    for (const Fixup &fix : fixups_) {
        Addr target = labelAddr(fix.label);
        Instruction inst = isa::decode(prog_.textWord(fix.textIndex));
        if (fix.isBranch) {
            Addr pc = prog_.textBaseAddr() + 4 * fix.textIndex;
            std::int64_t off =
                (static_cast<std::int64_t>(target) -
                 static_cast<std::int64_t>(pc) - 4) / 4;
            fatal_if(off < -32768 || off > 32767,
                     "branch to '%s' out of range (%lld words)",
                     fix.label.c_str(), (long long)off);
            inst.imm = static_cast<std::int32_t>(off);
        } else {
            inst.imm = static_cast<std::int32_t>(target / 4);
        }
        prog_.setTextWord(fix.textIndex, isa::encode(inst));
    }
    finalized_ = true;
}

} // namespace prog
} // namespace dscalar
