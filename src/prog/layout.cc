#include "prog/layout.hh"

namespace dscalar {
namespace prog {

Segment
segmentOf(Addr addr)
{
    if (addr < pageTableLimit)
        return Segment::PageTable;
    if (addr < globalBase)
        return Segment::Text;
    if (addr < heapBase)
        return Segment::Global;
    if (addr < stackTop - 0x0800'0000)
        return Segment::Heap;
    return Segment::Stack;
}

const char *
segmentName(Segment seg)
{
    switch (seg) {
      case Segment::PageTable: return "ptable";
      case Segment::Text: return "text";
      case Segment::Global: return "global";
      case Segment::Heap: return "heap";
      case Segment::Stack: return "stack";
      default: return "?";
    }
}

} // namespace prog
} // namespace dscalar
