#include "prog/program.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dscalar {
namespace prog {

Program::Program() = default;

Addr
Program::appendText(std::uint32_t word)
{
    Addr addr = textBase + 4 * text_.size();
    text_.push_back(word);
    return addr;
}

Addr
Program::allocGlobal(std::uint64_t size, std::uint64_t align)
{
    panic_if(!isPowerOf2(align), "alignment %llu not a power of two",
             (unsigned long long)align);
    globalBrk_ = alignUp(globalBrk_, align);
    Addr base = globalBrk_;
    globalBrk_ += size;
    fatal_if(globalBrk_ > heapBase, "global segment overflow");
    // Touch first and last page so the footprint includes the span.
    for (Addr a = pageBase(base); a < globalBrk_; a += pageSize)
        pageFor(a);
    return base;
}

Addr
Program::allocHeap(std::uint64_t size, std::uint64_t align)
{
    panic_if(!isPowerOf2(align), "alignment %llu not a power of two",
             (unsigned long long)align);
    heapBrk_ = alignUp(heapBrk_, align);
    Addr base = heapBrk_;
    heapBrk_ += size;
    fatal_if(heapBrk_ > stackTop - 0x0800'0000, "heap segment overflow");
    for (Addr a = pageBase(base); a < heapBrk_; a += pageSize)
        pageFor(a);
    return base;
}

std::vector<std::uint8_t> &
Program::pageFor(Addr addr)
{
    Addr base = pageBase(addr);
    auto it = dataPages_.find(base);
    if (it == dataPages_.end())
        it = dataPages_.emplace(base,
                                std::vector<std::uint8_t>(pageSize, 0))
                 .first;
    return it->second;
}

void
Program::poke8(Addr addr, std::uint8_t v)
{
    pageFor(addr)[addr & (pageSize - 1)] = v;
}

void
Program::poke32(Addr addr, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        poke8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Program::poke64(Addr addr, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        poke8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Program::pokeDouble(Addr addr, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    poke64(addr, bits);
}

std::uint8_t
Program::peek8(Addr addr) const
{
    auto it = dataPages_.find(pageBase(addr));
    if (it == dataPages_.end())
        return 0;
    return it->second[addr & (pageSize - 1)];
}

std::uint64_t
Program::peek64(Addr addr) const
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | peek8(addr + i);
    return v;
}

std::uint64_t
Program::imageDigest() const
{
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix64 = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= prime;
        }
    };
    mix64(entry);
    mix64(text_.size());
    for (std::uint32_t w : text_)
        mix64(w);
    for (const auto &[base, bytes] : dataPages_) {
        mix64(base);
        for (std::uint8_t b : bytes) {
            h ^= b;
            h *= prime;
        }
    }
    return h;
}

std::vector<Addr>
Program::touchedPages() const
{
    std::vector<Addr> pages;
    for (Addr a = pageBase(textBase); a < textLimit(); a += pageSize)
        pages.push_back(a);
    for (const auto &[base, bytes] : dataPages_)
        pages.push_back(base);
    for (Addr a = pageBase(stackBase()); a < stackTop; a += pageSize)
        pages.push_back(a);
    return pages;
}

std::size_t
Program::pagesInSegment(Segment seg) const
{
    std::size_t n = 0;
    for (Addr page : touchedPages())
        if (segmentOf(page) == seg)
            ++n;
    return n;
}

} // namespace prog
} // namespace dscalar
