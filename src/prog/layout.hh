/**
 * @file
 * Simulated address-space layout.
 *
 * The paper assumes a single-level page table locked in the low
 * region of physical memory (replicated at every node), an 8 KB page
 * size for distribution/replication decisions, and the usual
 * text/global/heap/stack segments whose page counts Table 2 reports.
 */

#ifndef DSCALAR_PROG_LAYOUT_HH
#define DSCALAR_PROG_LAYOUT_HH

#include "common/types.hh"

namespace dscalar {
namespace prog {

/** Page size used for ownership, distribution, and replication. */
inline constexpr Addr pageSize = 8 * 1024;

/** Low region reserved for the (replicated) page table itself. */
inline constexpr Addr pageTableBase = 0x0000'0000;
inline constexpr Addr pageTableLimit = 0x0001'0000;

inline constexpr Addr textBase = 0x0001'0000;
inline constexpr Addr globalBase = 0x1000'0000;
inline constexpr Addr heapBase = 0x2000'0000;

/** Stack grows down from stackTop. */
inline constexpr Addr stackTop = 0x3000'0000;
inline constexpr Addr defaultStackSize = 16 * pageSize;

/** Program segment classification (Table 2 columns). */
enum class Segment : std::uint8_t {
    PageTable,
    Text,
    Global,
    Heap,
    Stack,
    NUM_SEGMENTS
};

/** @return the segment containing @p addr (by layout region). */
Segment segmentOf(Addr addr);

/** @return a short printable name, e.g.\ "text". */
const char *segmentName(Segment seg);

/** @return the base address of the page containing @p addr. */
inline Addr
pageBase(Addr addr)
{
    return addr & ~(pageSize - 1);
}

} // namespace prog
} // namespace dscalar

#endif // DSCALAR_PROG_LAYOUT_HH
