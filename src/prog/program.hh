/**
 * @file
 * A complete executable program image: encoded text, initialized
 * data, allocation cursors, and the metadata the DataScalar page
 * distributor needs (which pages exist, per segment).
 */

#ifndef DSCALAR_PROG_PROGRAM_HH
#define DSCALAR_PROG_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "prog/layout.hh"

namespace dscalar {
namespace prog {

/** An executable image produced by the Assembler / workload builders. */
class Program
{
  public:
    Program();

    /** Name used in reports (e.g.\ "compress_s"). */
    std::string name = "anon";

    // -- Text -------------------------------------------------------

    /** Append one encoded instruction word; @return its address. */
    Addr appendText(std::uint32_t word);

    Addr textBaseAddr() const { return textBase; }
    Addr textLimit() const { return textBase + 4 * text_.size(); }
    std::size_t textWords() const { return text_.size(); }
    std::uint32_t textWord(std::size_t i) const { return text_.at(i); }
    void setTextWord(std::size_t i, std::uint32_t w) { text_.at(i) = w; }

    /** Entry point; defaults to the first text word. */
    Addr entry = textBase;

    // -- Data -------------------------------------------------------

    /**
     * Reserve @p size bytes of zero-initialized global data.
     * @return the base address of the reservation.
     */
    Addr allocGlobal(std::uint64_t size, std::uint64_t align = 8);

    /** Reserve @p size bytes in the (statically initialized) heap. */
    Addr allocHeap(std::uint64_t size, std::uint64_t align = 8);

    /** Write initialized bytes into the image. */
    void poke8(Addr addr, std::uint8_t v);
    void poke32(Addr addr, std::uint32_t v);
    void poke64(Addr addr, std::uint64_t v);
    void pokeDouble(Addr addr, double v);

    /** Read back initialized bytes (zero where untouched). */
    std::uint8_t peek8(Addr addr) const;
    std::uint64_t peek64(Addr addr) const;

    /** Sparse map of initialized / reserved data pages. */
    const std::map<Addr, std::vector<std::uint8_t>> &
    dataPages() const
    {
        return dataPages_;
    }

    // -- Stack ------------------------------------------------------

    Addr stackSize = defaultStackSize;
    Addr stackBase() const { return stackTop - stackSize; }
    Addr initialSp() const { return stackTop - 64; }

    // -- Identity ---------------------------------------------------

    /**
     * FNV-1a digest over everything that defines the image: entry
     * point, encoded text, and every initialized data page (address
     * and bytes). Equal digests across independently built programs
     * mean byte-identical images — the generator-determinism check
     * in test_program_gen and dsfuzz repro validation rely on it.
     */
    std::uint64_t imageDigest() const;

    // -- Footprint --------------------------------------------------

    /**
     * All pages the program can touch, in ascending address order:
     * text pages, reserved global/heap pages, and stack pages.
     * The page-table region is excluded (always replicated).
     */
    std::vector<Addr> touchedPages() const;

    /** Number of touched pages belonging to @p seg. */
    std::size_t pagesInSegment(Segment seg) const;

  private:
    std::vector<std::uint8_t> &pageFor(Addr addr);

    std::vector<std::uint32_t> text_;
    std::map<Addr, std::vector<std::uint8_t>> dataPages_;
    Addr globalBrk_ = globalBase;
    Addr heapBrk_ = heapBase;
};

} // namespace prog
} // namespace dscalar

#endif // DSCALAR_PROG_PROGRAM_HH
