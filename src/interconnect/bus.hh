/**
 * @file
 * Shared global bus connecting the IRAM nodes.
 *
 * Every transaction is an implicit broadcast ("broadcasts on a bus
 * are free" — Section 4.4). The model is a single occupied resource:
 * a message holds the bus for ceil(bytes / width) bus clocks, each
 * bus clock being clockDivisor core cycles. The paper's configuration
 * is an 8-byte bus at one tenth of the core clock.
 */

#ifndef DSCALAR_INTERCONNECT_BUS_HH
#define DSCALAR_INTERCONNECT_BUS_HH

#include <cstdint>

#include "common/types.hh"
#include "interconnect/fault_model.hh"
#include "interconnect/message.hh"

namespace dscalar {
namespace interconnect {

/** Global-bus parameters. */
struct BusParams
{
    unsigned widthBytes = 8;   ///< data width per bus clock
    Cycle clockDivisor = 10;   ///< core cycles per bus clock
    unsigned headerBytes = 8;  ///< address/tag overhead per message
    Cycle interfacePenalty = 2; ///< queue penalty before bus entry
};

/** Result of one fault-aware bus transmission. */
struct BusTransmitResult
{
    unsigned numDeliveries = 0; ///< 0 (dropped), 1, or 2 (duplicated)
    Cycle at[2] = {0, 0};       ///< delivery cycles of each copy
    bool dropped = false;
    bool duplicated = false;
};

/** Occupancy + traffic-accounting model of the global bus. */
class Bus
{
  public:
    explicit Bus(const BusParams &params);

    const BusParams &params() const { return params_; }

    /**
     * Transmit a message of traffic class @p kind carrying a
     * @p line_size payload, ready to enter the interface at
     * @p ready.
     * @return core cycle at which delivery completes at receivers.
     */
    Cycle send(MsgKind kind, unsigned line_size, Cycle ready);

    /** Attach the fault source consulted by transmit(); nullptr (the
     *  default) models a perfect medium. */
    void setFaultModel(FaultModel *faults) { faults_ = faults; }

    /**
     * Fault-aware variant of send(): the message from @p src for
     * @p line occupies the bus as usual, but the attached FaultModel
     * may drop the delivery (occupancy still charged — the wire was
     * driven), duplicate it (a second send() back to back), or delay
     * its arrival. Without a fault model this is exactly one send().
     */
    BusTransmitResult transmit(MsgKind kind, unsigned line_size,
                               NodeId src, Addr line, Cycle ready);

    /** Core cycles a message of @p bytes occupies the bus. */
    Cycle occupancyCycles(std::size_t bytes) const;

    /**
     * Cycle at which the bus is next idle. Occupancy is resolved
     * eagerly inside send(), so the event-driven run loops need this
     * only as an invariant check / diagnostic: the wake-up times that
     * matter are the delivery cycles send() returns.
     */
    Cycle nextFreeCycle() const { return freeAt_; }

    // Traffic accounting ---------------------------------------------
    std::uint64_t totalMessages() const { return messages_; }
    std::uint64_t totalBytes() const { return bytes_; }
    std::uint64_t messagesOf(MsgKind kind) const;
    std::uint64_t bytesOf(MsgKind kind) const;
    /** Core cycles the bus spent occupied. */
    Cycle busyCycles() const { return busy_; }

  private:
    BusParams params_;
    FaultModel *faults_ = nullptr;
    Cycle freeAt_ = 0;
    Cycle busy_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t kindMessages_[numMsgKinds] = {};
    std::uint64_t kindBytes_[numMsgKinds] = {};
};

} // namespace interconnect
} // namespace dscalar

#endif // DSCALAR_INTERCONNECT_BUS_HH
