/**
 * @file
 * Deterministic fault injection for the global interconnect.
 *
 * The ESP protocol as evaluated in the paper assumes a perfectly
 * reliable broadcast medium; a single lost delivery silently
 * deadlocks a run. This model makes delivery faults first-class:
 * every transmission (bus message, ring hop) draws an independent
 * drop / duplicate / delay decision from a seeded counter-based
 * hash, so a run's fault pattern is a pure function of the seed and
 * the message stream — identical across repeats, job counts, and
 * the event-driven / single-stepping run loops.
 *
 * All probabilities default to zero: with the knobs off, decide()
 * is never consulted and the interconnect behaves exactly as the
 * paper's reproduced configuration.
 */

#ifndef DSCALAR_INTERCONNECT_FAULT_MODEL_HH
#define DSCALAR_INTERCONNECT_FAULT_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "common/trace.hh"
#include "common/types.hh"
#include "interconnect/message.hh"

namespace dscalar {
namespace interconnect {

/** Fault-injection knobs; all-off defaults model a perfect medium. */
struct FaultParams
{
    double dropProb = 0.0;  ///< P(transmission is lost)
    double dupProb = 0.0;   ///< P(message is transmitted twice)
    double delayProb = 0.0; ///< P(delivery is jittered)
    Cycle maxDelay = 0;     ///< jitter uniform in [1, maxDelay]
    std::uint64_t seed = 1; ///< decision-stream seed

    bool
    enabled() const
    {
        return dropProb > 0.0 || dupProb > 0.0 ||
               (delayProb > 0.0 && maxDelay > 0);
    }
};

/** Outcome of one fault decision for one transmission. */
struct FaultDecision
{
    bool drop = false;      ///< primary copy never delivered
    bool duplicate = false; ///< an extra copy is transmitted
    Cycle delay = 0;        ///< extra delivery latency
};

/** Fault-event counters. */
struct FaultStats
{
    std::uint64_t decisions = 0;  ///< transmissions considered
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t delayCycles = 0; ///< summed injected jitter
};

/**
 * Seeded deterministic fault source shared by Bus and Ring.
 *
 * Decisions are keyed by (kind, src, line) with a per-key occurrence
 * counter, hashed with the seed through splitmix64: the nth
 * transmission of a given message identity always faults the same
 * way, independent of how transmissions interleave globally.
 */
class FaultModel
{
  public:
    FaultModel() = default;
    explicit FaultModel(const FaultParams &params) : params_(params) {}

    const FaultParams &params() const { return params_; }
    bool enabled() const { return params_.enabled(); }

    /** Observe fault events (FaultDrop/FaultDuplicate/FaultDelay,
     *  attributed to the sending node); nullptr disables. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /**
     * Draw the fault outcome for one transmission of @p line from
     * @p src at cycle @p now (trace timestamp only). Callers must
     * check enabled() first on hot paths; calling while disabled
     * returns a clean decision without consuming a draw.
     */
    FaultDecision decide(MsgKind kind, NodeId src, Addr line,
                         Cycle now);

    const FaultStats &faultStats() const { return stats_; }

  private:
    FaultParams params_;
    TraceSink *sink_ = nullptr;
    std::unordered_map<std::uint64_t, std::uint64_t> occurrence_;
    FaultStats stats_;
};

} // namespace interconnect
} // namespace dscalar

#endif // DSCALAR_INTERCONNECT_FAULT_MODEL_HH
