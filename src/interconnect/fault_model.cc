#include "interconnect/fault_model.hh"

namespace dscalar {
namespace interconnect {

namespace {

/** One splitmix64 mixing step (same finalizer as common/random.hh). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a raw 64-bit value. */
double
toReal(std::uint64_t v)
{
    return static_cast<double>(v >> 11) * 0x1.0p-53;
}

} // namespace

FaultDecision
FaultModel::decide(MsgKind kind, NodeId src, Addr line, Cycle now)
{
    FaultDecision dec;
    if (!enabled())
        return dec;

    ++stats_.decisions;

    // Key the decision stream on the message identity and its
    // occurrence index, never on global call order: the nth
    // transmission of (kind, src, line) faults identically no matter
    // how transmissions from other nodes interleave, which is what
    // keeps fault patterns bit-identical across run-loop modes.
    std::uint64_t key =
        mix64(mix64(static_cast<std::uint64_t>(kind)) ^
              mix64(0x517cc1b727220a95ULL * (src + 1)) ^ mix64(line));
    std::uint64_t n = occurrence_[key]++;
    std::uint64_t h = mix64(mix64(params_.seed ^ key) ^ n);

    if (toReal(h) < params_.dropProb) {
        dec.drop = true;
        ++stats_.drops;
        if (sink_)
            sink_->event({src, now, TraceEventKind::FaultDrop, line});
        return dec; // a lost message is neither duplicated nor late
    }
    h = mix64(h);
    if (toReal(h) < params_.dupProb) {
        dec.duplicate = true;
        ++stats_.duplicates;
        if (sink_) {
            sink_->event(
                {src, now, TraceEventKind::FaultDuplicate, line});
        }
    }
    h = mix64(h);
    if (params_.maxDelay > 0 && toReal(h) < params_.delayProb) {
        dec.delay = 1 + mix64(h) % params_.maxDelay;
        ++stats_.delays;
        stats_.delayCycles += dec.delay;
        if (sink_) {
            // arg carries the injected delay so exporters can render
            // the jitter as a duration (obs::PerfettoTraceSink).
            sink_->event({src, now, TraceEventKind::FaultDelay, line,
                          dec.delay});
        }
    }
    return dec;
}

} // namespace interconnect
} // namespace dscalar
