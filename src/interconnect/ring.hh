/**
 * @file
 * Unidirectional point-to-point ring interconnect.
 *
 * Section 4.4 of the paper argues rings (e.g.\ SCI) suit ESP:
 * "on a ring, operations are observed by all nodes if the sender is
 * responsible for removing its own message". A broadcast therefore
 * traverses all N-1 downstream links and is removed by the sender.
 * Unlike the bus, disjoint ring segments carry different messages
 * simultaneously, so aggregate broadcast bandwidth scales.
 *
 * Model: each node owns its outgoing link. A message occupies
 * successive links for its serialization time; per-hop wire/router
 * latency is added on top. Delivery times therefore differ per
 * receiver — the paper's noted complication that "operands
 * originating at different processors are received at other nodes
 * in different orders".
 */

#ifndef DSCALAR_INTERCONNECT_RING_HH
#define DSCALAR_INTERCONNECT_RING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "interconnect/fault_model.hh"
#include "interconnect/message.hh"

namespace dscalar {
namespace interconnect {

/**
 * Ring parameters. Point-to-point links clock far faster than a
 * shared multi-drop bus (the SCI premise): the default link clock is
 * one fifth of the core clock where the default bus runs at one
 * tenth — a broadcast still occupies every link, so the ring only
 * pays off once its link-speed advantage beats the (N-1)-hop
 * traversal.
 */
struct RingParams
{
    unsigned widthBytes = 8;    ///< link width per link clock
    Cycle clockDivisor = 2;     ///< core cycles per link clock
    Cycle hopLatency = 4;       ///< per-hop wire + router cycles
    unsigned headerBytes = 8;
    Cycle interfacePenalty = 2; ///< injection queue penalty
};

/** One receiver's delivery time. */
struct RingDelivery
{
    NodeId node;
    Cycle at;
};

/** Result of one (possibly faulty) ring broadcast. */
struct RingBroadcastResult
{
    std::vector<RingDelivery> deliveries;
    unsigned dropped = 0; ///< receivers the message never reached
    bool duplicated = false;
};

/** Occupancy + traffic model of an N-node unidirectional ring. */
class Ring
{
  public:
    Ring(unsigned num_nodes, const RingParams &params);

    const RingParams &params() const { return params_; }

    /** Attach the fault source consulted by broadcast(); nullptr
     *  (the default) models perfect links. */
    void setFaultModel(FaultModel *faults) { faults_ = faults; }

    /**
     * Broadcast @p line from @p src, ready to inject at @p ready:
     * the message visits every other node in ring order and is
     * removed when it returns to the sender. An attached FaultModel
     * draws a per-hop decision: a drop kills the message at that
     * link (downstream receivers never see it), a delay adds to the
     * head propagation time (late for every later hop), and a
     * duplicate — decided at the first hop only — sends a second
     * full traversal behind the first.
     * @return per-receiver delivery times (all nodes except src)
     *         plus fault accounting.
     */
    RingBroadcastResult broadcast(MsgKind kind, unsigned line_size,
                                  NodeId src, Addr line, Cycle ready);

    /** Core cycles a message occupies one link. */
    Cycle serializationCycles(std::size_t bytes) const;

    /**
     * Cycle at which the earliest link is next idle. Like
     * Bus::nextFreeCycle() this is diagnostic: link occupancy is
     * resolved eagerly in broadcast(), whose per-receiver delivery
     * times are what the event-driven run loops wait on.
     */
    Cycle nextFreeCycle() const;

    std::uint64_t totalMessages() const { return messages_; }
    std::uint64_t totalBytes() const { return bytes_; }
    /** Sum of busy cycles over all links. */
    Cycle linkBusyCycles() const { return busy_; }

  private:
    /** One traversal of the ring; faults drawn only when @p faulty. */
    void traverse(MsgKind kind, NodeId src, Addr line, Cycle ser,
                  Cycle ready, bool faulty, RingBroadcastResult &res);

    unsigned numNodes_;
    RingParams params_;
    FaultModel *faults_ = nullptr;
    std::vector<Cycle> linkFreeAt_; ///< indexed by source node
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    Cycle busy_ = 0;
};

} // namespace interconnect
} // namespace dscalar

#endif // DSCALAR_INTERCONNECT_RING_HH
