/**
 * @file
 * Messages crossing the global interconnect.
 *
 * DataScalar systems place only broadcasts on the bus (ESP is
 * response-only); the traditional baseline uses request/response plus
 * off-chip write-backs — exactly the traffic classes whose removal
 * Table 1 quantifies.
 */

#ifndef DSCALAR_INTERCONNECT_MESSAGE_HH
#define DSCALAR_INTERCONNECT_MESSAGE_HH

#include "common/types.hh"

namespace dscalar {
namespace interconnect {

/** Traffic class of a bus message. */
enum class MsgKind : std::uint8_t {
    Broadcast,           ///< ESP data push (line + address tag)
    ReparativeBroadcast, ///< late broadcast repairing a false hit
    Rerequest,           ///< recovery: ask the owner to re-broadcast
    Request,             ///< traditional read request (address only)
    Response,            ///< traditional read response (line)
    WriteBack,           ///< traditional dirty-line write-back
    Write                ///< traditional store-miss word write
};

/** Number of MsgKind values (per-kind accounting array sizes). */
inline constexpr std::size_t numMsgKinds = 7;

/** @return printable name of @p kind. */
const char *msgKindName(MsgKind kind);

/** One in-flight message. */
struct Message
{
    MsgKind kind = MsgKind::Broadcast;
    Addr lineAddr = invalidAddr;
    NodeId src = 0;
    Cycle deliverAt = 0;
};

/** Payload size in bytes of @p kind given the line size. */
inline std::size_t
messageBytes(MsgKind kind, unsigned line_size, unsigned header_bytes)
{
    switch (kind) {
      case MsgKind::Request:
      case MsgKind::Rerequest:
        return header_bytes;
      default:
        return header_bytes + line_size;
    }
}

} // namespace interconnect
} // namespace dscalar

#endif // DSCALAR_INTERCONNECT_MESSAGE_HH
