#include "interconnect/ring.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace interconnect {

Ring::Ring(unsigned num_nodes, const RingParams &params)
    : numNodes_(num_nodes), params_(params),
      linkFreeAt_(num_nodes, 0)
{
    fatal_if(num_nodes < 1, "ring needs at least one node");
    fatal_if(params_.widthBytes == 0, "link width must be nonzero");
    fatal_if(params_.clockDivisor == 0, "link clock divisor >= 1");
}

Cycle
Ring::serializationCycles(std::size_t nbytes) const
{
    std::size_t clocks =
        (nbytes + params_.widthBytes - 1) / params_.widthBytes;
    return static_cast<Cycle>(clocks) * params_.clockDivisor;
}

Cycle
Ring::nextFreeCycle() const
{
    return *std::min_element(linkFreeAt_.begin(), linkFreeAt_.end());
}

void
Ring::traverse(MsgKind kind, NodeId src, Addr line, Cycle ser,
               Cycle ready, bool faulty, RingBroadcastResult &res)
{
    // Head of the message leaves src when its outgoing link frees.
    Cycle head = ready + params_.interfacePenalty;
    NodeId hop = src;
    for (unsigned k = 1; k < numNodes_; ++k) {
        Cycle start = std::max(head, linkFreeAt_[hop]);
        linkFreeAt_[hop] = start + ser;
        busy_ += ser;
        // Tail arrives at the next node after serialization + wire.
        head = start + ser + params_.hopLatency;

        if (faulty) {
            FaultDecision dec = faults_->decide(kind, src, line, start);
            if (dec.drop) {
                // The message dies on this link: this hop's receiver
                // and everything downstream never see it.
                res.dropped += numNodes_ - k;
                return;
            }
            head += dec.delay;
            if (dec.duplicate && k == 1 && !res.duplicated) {
                // A second copy follows the first around the ring;
                // its own hops draw no further faults.
                res.duplicated = true;
                traverse(kind, src, line, ser, head, false, res);
            }
        }

        hop = (hop + 1) % numNodes_;
        res.deliveries.push_back(RingDelivery{hop, head});
    }
}

RingBroadcastResult
Ring::broadcast(MsgKind kind, unsigned line_size, NodeId src,
                Addr line, Cycle ready)
{
    std::size_t nbytes =
        messageBytes(kind, line_size, params_.headerBytes);
    Cycle ser = serializationCycles(nbytes);

    ++messages_;
    bytes_ += nbytes;

    RingBroadcastResult res;
    bool faulty = faults_ && faults_->enabled();
    traverse(kind, src, line, ser, ready, faulty, res);
    return res;
}

} // namespace interconnect
} // namespace dscalar
