#include "interconnect/bus.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace interconnect {

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::Broadcast: return "broadcast";
      case MsgKind::ReparativeBroadcast: return "reparative";
      case MsgKind::Rerequest: return "rerequest";
      case MsgKind::Request: return "request";
      case MsgKind::Response: return "response";
      case MsgKind::WriteBack: return "writeback";
      case MsgKind::Write: return "write";
      default: return "?";
    }
}

Bus::Bus(const BusParams &params)
    : params_(params)
{
    fatal_if(params_.widthBytes == 0, "bus width must be nonzero");
    fatal_if(params_.clockDivisor == 0, "bus clock divisor must be >= 1");
}

Cycle
Bus::occupancyCycles(std::size_t bytes) const
{
    std::size_t bus_clocks =
        (bytes + params_.widthBytes - 1) / params_.widthBytes;
    return static_cast<Cycle>(bus_clocks) * params_.clockDivisor;
}

Cycle
Bus::send(MsgKind kind, unsigned line_size, Cycle ready)
{
    std::size_t nbytes =
        messageBytes(kind, line_size, params_.headerBytes);
    Cycle enter = ready + params_.interfacePenalty;
    Cycle start = std::max(enter, freeAt_);
    Cycle dur = occupancyCycles(nbytes);
    freeAt_ = start + dur;
    busy_ += dur;

    auto k = static_cast<std::size_t>(kind);
    ++messages_;
    bytes_ += nbytes;
    ++kindMessages_[k];
    kindBytes_[k] += nbytes;
    return freeAt_;
}

BusTransmitResult
Bus::transmit(MsgKind kind, unsigned line_size, NodeId src,
              Addr line, Cycle ready)
{
    BusTransmitResult res;
    Cycle primary = send(kind, line_size, ready);
    if (!faults_ || !faults_->enabled()) {
        res.numDeliveries = 1;
        res.at[0] = primary;
        return res;
    }

    FaultDecision dec = faults_->decide(kind, src, line, ready);
    if (dec.drop) {
        res.dropped = true;
        return res; // occupancy was charged; nothing is delivered
    }
    res.at[res.numDeliveries++] = primary + dec.delay;
    if (dec.duplicate) {
        res.duplicated = true;
        res.at[res.numDeliveries++] = send(kind, line_size, primary);
    }
    return res;
}

std::uint64_t
Bus::messagesOf(MsgKind kind) const
{
    return kindMessages_[static_cast<std::size_t>(kind)];
}

std::uint64_t
Bus::bytesOf(MsgKind kind) const
{
    return kindBytes_[static_cast<std::size_t>(kind)];
}

} // namespace interconnect
} // namespace dscalar
